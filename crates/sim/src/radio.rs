//! RF propagation and reception model.
//!
//! * Log-distance path loss (indoor exponent ≈ 3) maps transmit power and
//!   distance to received signal strength.
//! * Reception quality is signal-to-interference-plus-noise (SINR): the sum
//!   of all overlapping transmissions plus the thermal noise floor.
//! * Frame decoding success is a smooth per-rate, per-size probability: a
//!   logistic curve in the SINR margin over the rate's threshold, compounded
//!   per bit — longer frames and faster rates are more fragile, which is the
//!   physical root of the paper's observations about small 11 Mbps frames.

use crate::geometry::Pos;
use wifi_frames::phy::Rate;

/// Radio-propagation parameters.
#[derive(Clone, Copy, Debug)]
pub struct RadioConfig {
    /// Transmit power of clients and APs, dBm (802.11b cards: 15–20 dBm).
    pub tx_power_dbm: f64,
    /// Path loss at the 1 m reference distance, dB.
    pub ref_loss_db: f64,
    /// Log-distance path-loss exponent (≈2 free space, ≈3–3.5 indoors).
    pub pathloss_exp: f64,
    /// Thermal noise floor, dBm.
    pub noise_floor_dbm: f64,
    /// Carrier-sense threshold, dBm: transmissions weaker than this at a
    /// listener do not mark the medium busy for it (the source of hidden
    /// terminals).
    pub cs_threshold_dbm: f64,
    /// Receiver sensitivity, dBm: frames weaker than this are inaudible.
    pub sensitivity_dbm: f64,
    /// Pair-coupling floor, dBm: two radios whose *path-loss* RSSI (no
    /// fading) is below this floor do not interact at all — no reception,
    /// no interference contribution, no NAV, no sniffer accounting. At the
    /// default −110 dBm the excluded signals sit ≥ 15 dB under the thermal
    /// noise floor (< 0.14 dB of any SINR denominator), so within one venue
    /// nothing changes; across hundreds of meters it makes RF isolation
    /// *exact*, which is what lets [`crate::shard`] split a scenario into
    /// independently simulable components with bit-identical results.
    pub coupling_floor_dbm: f64,
    /// Slow shadow fading applied per (transmitter, receiver) link on top
    /// of the path loss — bodies and obstacles in a crowded hall.
    pub fading: Fading,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            tx_power_dbm: 15.0,
            ref_loss_db: 40.0,
            pathloss_exp: 3.0,
            noise_floor_dbm: -95.0,
            cs_threshold_dbm: -82.0,
            sensitivity_dbm: -90.0,
            coupling_floor_dbm: -110.0,
            fading: Fading::NONE,
        }
    }
}

/// Slow log-normal shadow fading.
///
/// Each `(transmitter, receiver)` link gets a Gaussian dB offset that is
/// held for one coherence interval and then redrawn — a person stepping
/// into the path attenuates a link for seconds, not per-frame. The offset
/// is a pure hash of `(link, interval, seed)`, so simulations stay
/// deterministic and replayable with no extra RNG state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fading {
    /// Standard deviation of the shadowing term, dB. Zero disables fading.
    pub sigma_db: f64,
    /// How long one fade realization lasts, microseconds.
    pub coherence_us: u64,
    /// Mixed into the hash so different runs fade differently.
    pub seed: u64,
}

impl Fading {
    /// No fading.
    pub const NONE: Fading = Fading {
        sigma_db: 0.0,
        coherence_us: 1,
        seed: 0,
    };

    /// A crowded-hall profile: σ = 8 dB held for ~4 s.
    pub const fn crowded_hall(seed: u64) -> Fading {
        Fading {
            sigma_db: 8.0,
            coherence_us: 4_000_000,
            seed,
        }
    }

    /// The fade (dB, signed) on the link `a → b` at time `now_us`.
    pub fn fade_db(&self, a: u64, b: u64, now_us: u64) -> f64 {
        if self.sigma_db == 0.0 {
            return 0.0;
        }
        let bucket = now_us / self.coherence_us.max(1);
        let h = splitmix64(
            splitmix64(self.seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ bucket,
        );
        // Box–Muller from two 32-bit halves of the hash.
        let u1 = ((h >> 32) as f64 + 1.0) / (u32::MAX as f64 + 2.0);
        let u2 = ((h & 0xFFFF_FFFF) as f64 + 0.5) / (u32::MAX as f64 + 1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        z * self.sigma_db
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RadioConfig {
    /// The coupling floor actually applied: `coupling_floor_dbm` clamped
    /// under both the carrier-sense threshold and the receiver sensitivity,
    /// so every pair that could carrier-sense or decode one another is
    /// guaranteed to count as coupled — the invariant the shard planner's
    /// connected components rest on.
    pub fn effective_coupling_floor_dbm(&self) -> f64 {
        self.coupling_floor_dbm
            .min(self.cs_threshold_dbm)
            .min(self.sensitivity_dbm)
    }

    /// Received signal strength at `rx` for a transmitter at `tx`, dBm.
    /// Distances below 1 m clamp to the reference loss.
    pub fn rssi_dbm(&self, tx: Pos, rx: Pos) -> f64 {
        let d = tx.distance_to(rx).max(1.0);
        self.tx_power_dbm - self.ref_loss_db - 10.0 * self.pathloss_exp * d.log10()
    }

    /// The distance (meters) at which RSSI falls to `level_dbm` — handy for
    /// sizing scenarios (e.g. placing a hidden terminal outside carrier-sense
    /// range but inside interference range of a receiver).
    pub fn range_at_dbm(&self, level_dbm: f64) -> f64 {
        let loss = self.tx_power_dbm - self.ref_loss_db - level_dbm;
        10f64.powf(loss / (10.0 * self.pathloss_exp))
    }
}

/// Sums powers expressed in dBm, returning dBm.
pub fn sum_dbm(levels: impl IntoIterator<Item = f64>) -> f64 {
    let mw: f64 = levels.into_iter().map(|l| 10f64.powf(l / 10.0)).sum();
    if mw <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * mw.log10()
    }
}

/// SINR in dB: `signal` against the power sum of `interferers` and the noise
/// floor.
pub fn sinr_db(signal_dbm: f64, interferers_dbm: &[f64], noise_floor_dbm: f64) -> f64 {
    effective_sinr_db(signal_dbm, interferers_dbm, noise_floor_dbm, 0.0)
}

/// SINR with despreading credit: DSSS processing gain suppresses
/// *interference* (not thermal noise) by `processing_gain_db`. The 11-chip
/// Barker code of the 1 and 2 Mbps rates rejects ≈10.4 dB of co-channel
/// interference — the physical reason slow frames survive collisions that
/// destroy CCK frames, and a key ingredient of the paper's observation that
/// 1 Mbps traffic keeps flowing (and keeps being captured) under congestion.
pub fn effective_sinr_db(
    signal_dbm: f64,
    interferers_dbm: &[f64],
    noise_floor_dbm: f64,
    processing_gain_db: f64,
) -> f64 {
    let denom = sum_dbm(
        interferers_dbm
            .iter()
            .map(|i| i - processing_gain_db)
            .chain(std::iter::once(noise_floor_dbm)),
    );
    signal_dbm - denom
}

/// Interference-rejection (despreading) gain of each 802.11b rate, dB.
pub fn processing_gain_db(rate: Rate) -> f64 {
    match rate {
        Rate::R1 => 10.4,  // 11-chip Barker
        Rate::R2 => 7.4,   // Barker, 2 bits/symbol
        Rate::R5_5 => 2.0, // CCK-4
        Rate::R11 => 0.7,  // CCK-8
    }
}

/// Frame-decoding model.
#[derive(Clone, Copy, Debug)]
pub struct ErrorModel {
    /// Logistic steepness: dB of SINR margin per e-fold of per-bit odds.
    pub steepness_db: f64,
    /// Reference frame size (bytes) at which the rate-threshold SNRs of
    /// [`Rate::min_snr_db`] give 50 % frame success.
    pub ref_bytes: f64,
}

impl Default for ErrorModel {
    fn default() -> Self {
        ErrorModel {
            steepness_db: 1.5,
            ref_bytes: 1024.0,
        }
    }
}

impl ErrorModel {
    /// Probability that a frame of `bytes` bytes at `rate` decodes at the
    /// given SINR.
    ///
    /// A logistic per-bit success probability is compounded over the frame
    /// length, normalized so that at `sinr == rate.min_snr_db()` a
    /// `ref_bytes`-byte frame succeeds 50 % of the time. The model has the
    /// two monotonicities that drive the paper's findings: success falls
    /// with frame size and rises with SINR margin, and a slower rate buys
    /// margin.
    pub fn frame_success_prob(&self, sinr_db: f64, rate: Rate, bytes: u32) -> f64 {
        let margin = sinr_db - rate.min_snr_db();
        // Per-bit success from a logistic in the margin. At margin 0 the
        // per-bit success is tuned so p_ref = 0.5 for ref_bytes.
        let bits_ref = self.ref_bytes * 8.0;
        // p_bit(0)^bits_ref = 0.5  =>  ln p_bit(0) = ln 0.5 / bits_ref.
        let ln_pbit_at_zero = 0.5f64.ln() / bits_ref;
        // Scale the per-bit log-failure by a logistic factor in the margin:
        // large positive margin -> factor -> 0 (no errors); large negative ->
        // factor grows -> certain loss.
        let factor = (-margin / self.steepness_db).exp();
        let ln_pbit = ln_pbit_at_zero * factor;
        let bits = bytes as f64 * 8.0;
        (ln_pbit * bits).exp().clamp(0.0, 1.0)
    }
}

/// Batched PHY kernels: the scalar reception math of this module evaluated
/// across whole interferer lists / reception sets in one pass over
/// contiguous `f64` slices.
///
/// **Bit-identity contract:** every function here performs the *same
/// floating-point operations in the same order* as the scalar routine it
/// batches ([`effective_sinr_db`], [`ErrorModel::frame_success_prob`]), so
/// its results are bit-for-bit equal — only loop overhead (iterator
/// adaptors, per-call constant recomputation, per-element dispatch) is
/// removed. The simulator's golden digests rest on this; it is pinned by
/// proptests in `crates/sim/tests/phy_batch_equiv.rs`.
pub mod batch {
    use super::ErrorModel;
    use wifi_frames::phy::Rate;

    /// [`super::effective_sinr_db`] over a contiguous interferer slice:
    /// each interferer's milliwatt power is accumulated in slice order,
    /// then the noise floor, exactly like the scalar
    /// `sum_dbm(interferers.map(|i| i - pg).chain(once(noise)))` fold.
    #[inline]
    pub fn effective_sinr_db(
        signal_dbm: f64,
        interferers_dbm: &[f64],
        noise_floor_dbm: f64,
        processing_gain_db: f64,
    ) -> f64 {
        let mut mw = 0.0f64;
        for &i in interferers_dbm {
            mw += 10f64.powf((i - processing_gain_db) / 10.0);
        }
        mw += 10f64.powf(noise_floor_dbm / 10.0);
        let denom = if mw <= 0.0 {
            f64::NEG_INFINITY
        } else {
            10.0 * mw.log10()
        };
        signal_dbm - denom
    }

    /// [`ErrorModel::frame_success_prob`] for one frame evaluated at many
    /// receivers' SINRs (the concurrent receptions of one `TxEnd`): the
    /// per-frame constants — rate threshold, reference-bit normalization —
    /// are computed once, the per-SINR tail is the scalar op sequence
    /// verbatim. Results are appended to `out` in `sinrs_db` order.
    pub fn frame_success_probs(
        model: &ErrorModel,
        sinrs_db: &[f64],
        rate: Rate,
        bytes: u32,
        out: &mut Vec<f64>,
    ) {
        let min_snr = rate.min_snr_db();
        let bits_ref = model.ref_bytes * 8.0;
        let ln_pbit_at_zero = 0.5f64.ln() / bits_ref;
        let bits = bytes as f64 * 8.0;
        out.reserve(sinrs_db.len());
        for &sinr_db in sinrs_db {
            let margin = sinr_db - min_snr;
            let factor = (-margin / model.steepness_db).exp();
            let ln_pbit = ln_pbit_at_zero * factor;
            out.push((ln_pbit * bits).exp().clamp(0.0, 1.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_sinr_matches_scalar_bitwise() {
        let interf = [-62.5, -71.0, -88.25, -54.125];
        for k in 0..=interf.len() {
            let scalar = effective_sinr_db(-58.0, &interf[..k], -95.0, 10.4);
            let batched = batch::effective_sinr_db(-58.0, &interf[..k], -95.0, 10.4);
            assert_eq!(scalar.to_bits(), batched.to_bits(), "k={k}");
        }
    }

    #[test]
    fn batch_success_matches_scalar_bitwise() {
        let m = ErrorModel::default();
        let sinrs = [-4.0, 0.0, 6.25, 11.5, 40.0];
        let mut out = Vec::new();
        batch::frame_success_probs(&m, &sinrs, Rate::R5_5, 777, &mut out);
        for (i, &sinr) in sinrs.iter().enumerate() {
            let scalar = m.frame_success_prob(sinr, Rate::R5_5, 777);
            assert_eq!(scalar.to_bits(), out[i].to_bits(), "sinr {sinr}");
        }
    }

    #[test]
    fn fading_is_deterministic_and_bucketed() {
        let f = Fading::crowded_hall(42);
        let a = f.fade_db(1, 2, 100);
        assert_eq!(a, f.fade_db(1, 2, 100), "pure function of inputs");
        assert_eq!(
            a,
            f.fade_db(1, 2, 3_999_999),
            "same coherence bucket, same fade"
        );
        assert_ne!(a, f.fade_db(1, 2, 4_000_001), "next bucket re-draws");
        assert_ne!(
            a,
            f.fade_db(2, 1, 100),
            "directional links fade independently"
        );
        assert_eq!(Fading::NONE.fade_db(1, 2, 100), 0.0);
    }

    #[test]
    fn fading_distribution_is_roughly_gaussian() {
        let f = Fading {
            sigma_db: 6.0,
            coherence_us: 1,
            seed: 7,
        };
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|i| f.fade_db(i, i + 1, 0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.3, "std {}", var.sqrt());
    }

    #[test]
    fn rssi_falls_with_distance() {
        let r = RadioConfig::default();
        let tx = Pos::new(0.0, 0.0);
        let near = r.rssi_dbm(tx, Pos::new(1.0, 0.0));
        let mid = r.rssi_dbm(tx, Pos::new(10.0, 0.0));
        let far = r.rssi_dbm(tx, Pos::new(100.0, 0.0));
        assert!(near > mid && mid > far);
        // 15 - 40 = -25 dBm at 1 m; -55 at 10 m with exponent 3.
        assert!((near - -25.0).abs() < 1e-9);
        assert!((mid - -55.0).abs() < 1e-9);
    }

    #[test]
    fn sub_meter_clamps() {
        let r = RadioConfig::default();
        let a = r.rssi_dbm(Pos::new(0.0, 0.0), Pos::new(0.1, 0.0));
        let b = r.rssi_dbm(Pos::new(0.0, 0.0), Pos::new(1.0, 0.0));
        assert_eq!(a, b);
    }

    #[test]
    fn range_inverts_rssi() {
        let r = RadioConfig::default();
        for level in [-62.0, -82.0, -90.0] {
            let d = r.range_at_dbm(level);
            let back = r.rssi_dbm(Pos::new(0.0, 0.0), Pos::new(d, 0.0));
            assert!((back - level).abs() < 1e-6, "level {level}: {back}");
        }
    }

    #[test]
    fn power_sum_dominated_by_strongest() {
        let s = sum_dbm([-50.0, -90.0]);
        assert!(s > -50.0 && s < -49.9);
        // Two equal powers add 3 dB.
        let s = sum_dbm([-60.0, -60.0]);
        assert!((s - -56.989_7).abs() < 1e-3);
        assert_eq!(sum_dbm([]), f64::NEG_INFINITY);
    }

    #[test]
    fn sinr_against_noise_only() {
        let s = sinr_db(-60.0, &[], -95.0);
        assert!((s - 35.0).abs() < 1e-9);
    }

    #[test]
    fn sinr_collision_crushes_margin() {
        // An equal-power interferer puts SINR at ~0 dB: undecodable at any
        // 802.11b rate.
        let s = sinr_db(-60.0, &[-60.0], -95.0);
        assert!(s < 0.1);
    }

    #[test]
    fn success_monotone_in_sinr() {
        let m = ErrorModel::default();
        let mut last = 0.0;
        for snr in [0.0, 4.0, 8.0, 12.0, 16.0, 24.0, 40.0] {
            let p = m.frame_success_prob(snr, Rate::R11, 1024);
            assert!(p >= last, "p({snr}) = {p} < {last}");
            last = p;
        }
        assert!(last > 0.999);
    }

    #[test]
    fn success_falls_with_size() {
        let m = ErrorModel::default();
        let snr = 11.0;
        let small = m.frame_success_prob(snr, Rate::R11, 100);
        let large = m.frame_success_prob(snr, Rate::R11, 1500);
        assert!(small > large);
    }

    #[test]
    fn slower_rate_buys_reliability() {
        let m = ErrorModel::default();
        let snr = 8.0; // marginal for 11 Mbps, comfortable for 1 Mbps
        let p11 = m.frame_success_prob(snr, Rate::R11, 800);
        let p1 = m.frame_success_prob(snr, Rate::R1, 800);
        assert!(p1 > p11 + 0.2, "p1={p1} p11={p11}");
    }

    #[test]
    fn half_success_at_threshold_for_ref_size() {
        let m = ErrorModel::default();
        for rate in Rate::ALL {
            let p = m.frame_success_prob(rate.min_snr_db(), rate, 1024);
            assert!((p - 0.5).abs() < 1e-6, "{rate}: {p}");
        }
    }

    #[test]
    fn deep_fade_is_certain_loss() {
        let m = ErrorModel::default();
        let p = m.frame_success_prob(-10.0, Rate::R1, 1500);
        assert!(p < 1e-6);
    }
}
