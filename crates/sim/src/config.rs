//! Simulation-wide configuration.

use crate::radio::{ErrorModel, RadioConfig};
use wifi_frames::phy::{Channel, Preamble, Rate};
use wifi_frames::timing::Dcf;

/// Dynamic channel-assignment policy for APs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelMgmt {
    /// How often each AP re-evaluates channel loads, microseconds.
    pub eval_interval_us: u64,
    /// Switch only when the current channel's recent air time exceeds the
    /// least-loaded channel's by this factor (hysteresis against flapping).
    pub switch_ratio: f64,
    /// Spread of the delay with which associated clients follow their AP
    /// to the new channel (they must notice beacon loss first), µs.
    pub follow_delay_max_us: u64,
}

impl Default for ChannelMgmt {
    fn default() -> Self {
        ChannelMgmt {
            eval_interval_us: 10_000_000,
            switch_ratio: 1.5,
            follow_delay_max_us: 500_000,
        }
    }
}

/// Top-level simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// DCF timing parameters.
    pub dcf: Dcf,
    /// Radio propagation parameters.
    pub radio: RadioConfig,
    /// Frame-decoding model.
    pub error: ErrorModel,
    /// The channels simulated (each gets an independent medium).
    pub channels: Vec<Channel>,
    /// RNG seed: same seed ⇒ identical trace.
    pub seed: u64,
    /// Rate used for control/management frames and beacons (the basic rate).
    pub control_rate: Rate,
    /// PLCP preamble.
    pub preamble: Preamble,
    /// Per-station transmit-queue capacity.
    pub queue_cap: usize,
    /// Apply EIFS after a failed decode at the intended receiver.
    pub eifs_enabled: bool,
    /// Carrier-sense detection delay: how long after a transmission starts
    /// other stations perceive the channel as busy (propagation + CCA +
    /// RX/TX turnaround). This is the collision vulnerability window; the
    /// 20 µs 802.11b slot time exists to cover it.
    pub cs_delay_us: u64,
    /// Record every on-air frame as ground truth (memory-heavy on long
    /// runs; figure sweeps keep it on, long soak runs may disable it).
    pub record_ground_truth: bool,
    /// Beacon interval in microseconds (100 TU ≈ the paper's 100 ms).
    pub beacon_interval_us: u64,
    /// Dynamic channel assignment for APs (the venue's Airespace
    /// controller switched AP channels to balance load; technical details
    /// were proprietary — this is a published-heuristic stand-in).
    /// `None` disables it.
    pub channel_mgmt: Option<ChannelMgmt>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            dcf: Dcf::standard(),
            radio: RadioConfig::default(),
            error: ErrorModel::default(),
            channels: vec![Channel::new(1).unwrap()],
            seed: 1,
            control_rate: Rate::R1,
            preamble: Preamble::Long,
            queue_cap: 128,
            eifs_enabled: true,
            cs_delay_us: 15,
            record_ground_truth: true,
            beacon_interval_us: 102_400,
            channel_mgmt: None,
        }
    }
}

impl SimConfig {
    /// The three-orthogonal-channel configuration of the IETF network.
    pub fn ietf_three_channels(seed: u64) -> SimConfig {
        SimConfig {
            channels: Channel::ORTHOGONAL.to_vec(),
            seed,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert_eq!(c.control_rate, Rate::R1);
        assert_eq!(c.beacon_interval_us, 102_400);
        assert_eq!(c.channels.len(), 1);
        assert!(c.queue_cap > 0);
    }

    #[test]
    fn ietf_config_uses_orthogonal_channels() {
        let c = SimConfig::ietf_three_channels(7);
        assert_eq!(c.seed, 7);
        assert_eq!(
            c.channels.iter().map(|c| c.number()).collect::<Vec<_>>(),
            vec![1, 6, 11]
        );
    }
}
