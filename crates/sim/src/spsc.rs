//! A minimal bounded single-producer single-consumer channel.
//!
//! Built on `Mutex` + `Condvar` only (the workspace is offline and vendors
//! no concurrency crates). One producer hands fixed-size work chunks to one
//! consumer; the bound provides backpressure so a fast simulator cannot
//! buffer an unbounded backlog ahead of a slow analysis thread. Dropping
//! the [`Sender`] closes the channel ([`Receiver::recv`] drains what is
//! buffered, then returns `None`); dropping the [`Receiver`] makes further
//! [`Sender::send`] calls fail fast with the rejected value.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    buf: VecDeque<T>,
    producer_alive: bool,
    consumer_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

/// The producing half. Not clonable: single producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half. Not clonable: single consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A bounded channel of at most `capacity` in-flight items.
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(capacity.max(1)),
            producer_alive: true,
            consumer_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity: capacity.max(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until a slot frees up, then enqueues `value`. Returns the
    /// value back if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut state = self.shared.state.lock().expect("spsc lock poisoned");
        while state.buf.len() >= self.shared.capacity && state.consumer_alive {
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("spsc lock poisoned");
        }
        if !state.consumer_alive {
            return Err(value);
        }
        state.buf.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives; `None` once the sender is gone and the
    /// buffer is drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("spsc lock poisoned");
        while state.buf.is_empty() && state.producer_alive {
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("spsc lock poisoned");
        }
        let item = state.buf.pop_front();
        drop(state);
        if item.is_some() {
            self.shared.not_full.notify_one();
        }
        item
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("spsc lock poisoned");
        state.producer_alive = false;
        drop(state);
        self.shared.not_empty.notify_one();
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("spsc lock poisoned");
        state.consumer_alive = false;
        drop(state);
        self.shared.not_full.notify_one();
    }
}

/// The receiving half of a batch channel disconnected; items the producer
/// had buffered were discarded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Disconnected;

/// The producing half of a batched channel: items accumulate locally and
/// cross the channel `batch_len` at a time, so the per-item cost is a
/// `Vec::push`, not a mutex round-trip. A partial batch is flushed on
/// [`BatchSender::flush`] or on drop.
pub struct BatchSender<T> {
    tx: Sender<Vec<T>>,
    batch: Vec<T>,
    batch_len: usize,
}

/// The consuming half of a batched channel. Iterates items in send order,
/// pulling the next batch from the channel transparently; ends once the
/// sender is gone and everything buffered has been yielded.
pub struct BatchReceiver<T> {
    rx: Receiver<Vec<T>>,
    current: std::vec::IntoIter<T>,
}

/// A bounded channel carrying items in batches of `batch_len`, with at most
/// `capacity` full batches in flight. Backpressure therefore bounds the
/// consumer's backlog to roughly `capacity * batch_len` items plus one
/// partial batch.
pub fn batch_channel<T>(capacity: usize, batch_len: usize) -> (BatchSender<T>, BatchReceiver<T>) {
    let (tx, rx) = channel(capacity);
    let batch_len = batch_len.max(1);
    (
        BatchSender {
            tx,
            batch: Vec::with_capacity(batch_len),
            batch_len,
        },
        BatchReceiver {
            rx,
            current: Vec::new().into_iter(),
        },
    )
}

impl<T> BatchSender<T> {
    /// Appends one item, shipping the batch (blocking for a slot) when it
    /// reaches `batch_len`. Fails once the receiver is gone.
    pub fn push(&mut self, item: T) -> Result<(), Disconnected> {
        self.batch.push(item);
        if self.batch.len() >= self.batch_len {
            self.flush()
        } else {
            Ok(())
        }
    }

    /// Ships the current partial batch, if any.
    pub fn flush(&mut self) -> Result<(), Disconnected> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let full = std::mem::replace(&mut self.batch, Vec::with_capacity(self.batch_len));
        self.tx.send(full).map_err(|_| Disconnected)
    }
}

impl<T> Drop for BatchSender<T> {
    fn drop(&mut self) {
        // Best effort: a dead receiver already discarded everything anyway.
        let _ = self.flush();
    }
}

impl<T> Iterator for BatchReceiver<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        loop {
            if let Some(item) = self.current.next() {
                return Some(item);
            }
            self.current = self.rx.recv()?.into_iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_across_threads() {
        let (tx, rx) = channel::<u32>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn recv_drains_buffer_after_sender_drops() {
        let (tx, rx) = channel::<u32>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_fails_fast_after_receiver_drops() {
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn batch_channel_delivers_in_order_and_flushes_tail_on_drop() {
        let (mut tx, rx) = batch_channel::<u32>(2, 7);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                // 100 is not a multiple of 7: the tail rides the drop flush.
                tx.push(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn batch_explicit_flush_ships_partial_batch() {
        let (mut tx, mut rx) = batch_channel::<u32>(4, 64);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        tx.flush().unwrap();
        assert_eq!(rx.next(), Some(1));
        assert_eq!(rx.next(), Some(2));
        drop(tx);
        assert_eq!(rx.next(), None);
    }

    #[test]
    fn batch_push_fails_after_receiver_drops() {
        let (mut tx, rx) = batch_channel::<u32>(1, 2);
        drop(rx);
        assert_eq!(tx.push(1), Ok(()));
        assert_eq!(tx.push(2), Err(Disconnected));
    }

    #[test]
    fn bound_applies_backpressure() {
        let (tx, rx) = channel::<u32>(1);
        tx.send(1).unwrap();
        // A second send must block until the consumer takes one; run it on
        // a helper thread and confirm it completes once we recv.
        let helper = std::thread::spawn(move || tx.send(2).is_ok());
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert!(helper.join().unwrap());
    }
}
