//! A minimal bounded single-producer single-consumer channel.
//!
//! Built on `Mutex` + `Condvar` only (the workspace is offline and vendors
//! no concurrency crates). One producer hands fixed-size work chunks to one
//! consumer; the bound provides backpressure so a fast simulator cannot
//! buffer an unbounded backlog ahead of a slow analysis thread. Dropping
//! the [`Sender`] closes the channel ([`Receiver::recv`] drains what is
//! buffered, then returns `None`); dropping the [`Receiver`] makes further
//! [`Sender::send`] calls fail fast with the rejected value.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

struct State<T> {
    buf: VecDeque<T>,
    producer_alive: bool,
    consumer_alive: bool,
}

/// Locks the channel state, recovering from poisoning. Every mutation of
/// [`State`] is panic-atomic (plain field writes and `VecDeque` ops that
/// leave the queue consistent even if an allocation panics mid-call), so a
/// poisoned lock only means *some other* thread panicked while holding it —
/// the state itself is still sound, and a resident service must keep
/// draining rather than cascade the panic across the pipeline.
fn lock_state<T>(mutex: &Mutex<State<T>>) -> MutexGuard<'_, State<T>> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

/// The producing half. Not clonable: single producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half. Not clonable: single consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A bounded channel of at most `capacity` in-flight items.
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(capacity.max(1)),
            producer_alive: true,
            consumer_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity: capacity.max(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until a slot frees up, then enqueues `value`. Returns the
    /// value back if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut state = lock_state(&self.shared.state);
        while state.buf.len() >= self.shared.capacity && state.consumer_alive {
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if !state.consumer_alive {
            return Err(value);
        }
        state.buf.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives; `None` once the sender is gone and the
    /// buffer is drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = lock_state(&self.shared.state);
        while state.buf.is_empty() && state.producer_alive {
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let item = state.buf.pop_front();
        drop(state);
        if item.is_some() {
            self.shared.not_full.notify_one();
        }
        item
    }

    /// Non-blocking receive: an item if one is buffered, [`TryRecv::Empty`]
    /// if the producer is alive but has nothing queued yet, and
    /// [`TryRecv::Disconnected`] once the producer is gone and the buffer is
    /// drained. A resident service polls with this instead of parking in
    /// [`Receiver::recv`], so one stalled source cannot wedge the merge loop.
    pub fn try_recv(&self) -> TryRecv<T> {
        let mut state = lock_state(&self.shared.state);
        let item = state.buf.pop_front();
        let producer_alive = state.producer_alive;
        drop(state);
        match item {
            Some(item) => {
                self.shared.not_full.notify_one();
                TryRecv::Item(item)
            }
            None if producer_alive => TryRecv::Empty,
            None => TryRecv::Disconnected,
        }
    }

    /// Number of items currently buffered in the channel. A point-in-time
    /// snapshot for status reporting; it can be stale by the time it is read.
    pub fn queued(&self) -> usize {
        lock_state(&self.shared.state).buf.len()
    }
}

/// Outcome of a non-blocking [`Receiver::try_recv`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TryRecv<T> {
    /// An item was buffered and has been dequeued.
    Item(T),
    /// Nothing buffered right now, but the producer is still alive.
    Empty,
    /// The producer is gone and everything buffered has been drained.
    Disconnected,
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = lock_state(&self.shared.state);
        state.producer_alive = false;
        drop(state);
        self.shared.not_empty.notify_one();
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = lock_state(&self.shared.state);
        state.consumer_alive = false;
        drop(state);
        self.shared.not_full.notify_one();
    }
}

/// The receiving half of a batch channel disconnected; items the producer
/// had buffered were discarded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Disconnected;

/// The producing half of a batched channel: items accumulate locally and
/// cross the channel `batch_len` at a time, so the per-item cost is a
/// `Vec::push`, not a mutex round-trip. A partial batch is flushed on
/// [`BatchSender::flush`] or on drop.
pub struct BatchSender<T> {
    tx: Sender<Vec<T>>,
    batch: Vec<T>,
    batch_len: usize,
}

/// The consuming half of a batched channel. Iterates items in send order,
/// pulling the next batch from the channel transparently; ends once the
/// sender is gone and everything buffered has been yielded.
pub struct BatchReceiver<T> {
    rx: Receiver<Vec<T>>,
    current: std::vec::IntoIter<T>,
}

/// A bounded channel carrying items in batches of `batch_len`, with at most
/// `capacity` full batches in flight. Backpressure therefore bounds the
/// consumer's backlog to roughly `capacity * batch_len` items plus one
/// partial batch.
pub fn batch_channel<T>(capacity: usize, batch_len: usize) -> (BatchSender<T>, BatchReceiver<T>) {
    let (tx, rx) = channel(capacity);
    let batch_len = batch_len.max(1);
    (
        BatchSender {
            tx,
            batch: Vec::with_capacity(batch_len),
            batch_len,
        },
        BatchReceiver {
            rx,
            current: Vec::new().into_iter(),
        },
    )
}

impl<T> BatchSender<T> {
    /// Appends one item, shipping the batch (blocking for a slot) when it
    /// reaches `batch_len`. Fails once the receiver is gone.
    pub fn push(&mut self, item: T) -> Result<(), Disconnected> {
        self.batch.push(item);
        if self.batch.len() >= self.batch_len {
            self.flush()
        } else {
            Ok(())
        }
    }

    /// Ships the current partial batch, if any.
    pub fn flush(&mut self) -> Result<(), Disconnected> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let full = std::mem::replace(&mut self.batch, Vec::with_capacity(self.batch_len));
        self.tx.send(full).map_err(|_| Disconnected)
    }

    /// True when no items are sitting in the local (unshipped) batch. Since
    /// [`BatchSender::push`] can only fail at a batch boundary, a producer
    /// that snapshots its progress counters whenever this returns true gets
    /// accounting that exactly matches the items the consumer can observe.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }
}

impl<T> Drop for BatchSender<T> {
    fn drop(&mut self) {
        // Best effort: a dead receiver already discarded everything anyway.
        let _ = self.flush();
    }
}

impl<T> BatchReceiver<T> {
    /// Non-blocking variant of `Iterator::next`: yields buffered items in
    /// order, [`TryRecv::Empty`] when the producer is alive but nothing has
    /// crossed the channel yet, [`TryRecv::Disconnected`] at true end.
    pub fn try_next(&mut self) -> TryRecv<T> {
        loop {
            if let Some(item) = self.current.next() {
                return TryRecv::Item(item);
            }
            match self.rx.try_recv() {
                TryRecv::Item(batch) => self.current = batch.into_iter(),
                TryRecv::Empty => return TryRecv::Empty,
                TryRecv::Disconnected => return TryRecv::Disconnected,
            }
        }
    }

    /// Full batches currently queued in the channel (excludes the batch this
    /// receiver is part-way through). Snapshot for status reporting.
    pub fn queued_batches(&self) -> usize {
        self.rx.queued()
    }
}

impl<T> Iterator for BatchReceiver<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        loop {
            if let Some(item) = self.current.next() {
                return Some(item);
            }
            self.current = self.rx.recv()?.into_iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_across_threads() {
        let (tx, rx) = channel::<u32>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn recv_drains_buffer_after_sender_drops() {
        let (tx, rx) = channel::<u32>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_fails_fast_after_receiver_drops() {
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn batch_channel_delivers_in_order_and_flushes_tail_on_drop() {
        let (mut tx, rx) = batch_channel::<u32>(2, 7);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                // 100 is not a multiple of 7: the tail rides the drop flush.
                tx.push(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn batch_explicit_flush_ships_partial_batch() {
        let (mut tx, mut rx) = batch_channel::<u32>(4, 64);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        tx.flush().unwrap();
        assert_eq!(rx.next(), Some(1));
        assert_eq!(rx.next(), Some(2));
        drop(tx);
        assert_eq!(rx.next(), None);
    }

    #[test]
    fn batch_push_fails_after_receiver_drops() {
        let (mut tx, rx) = batch_channel::<u32>(1, 2);
        drop(rx);
        assert_eq!(tx.push(1), Ok(()));
        assert_eq!(tx.push(2), Err(Disconnected));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = channel::<u32>(4);
        assert_eq!(rx.try_recv(), TryRecv::Empty);
        tx.send(9).unwrap();
        assert_eq!(rx.queued(), 1);
        assert_eq!(rx.try_recv(), TryRecv::Item(9));
        assert_eq!(rx.try_recv(), TryRecv::Empty);
        drop(tx);
        assert_eq!(rx.try_recv(), TryRecv::Disconnected);
        assert_eq!(rx.try_recv(), TryRecv::Disconnected);
    }

    #[test]
    fn batch_try_next_drains_in_order_then_reports_state() {
        let (mut tx, mut rx) = batch_channel::<u32>(4, 2);
        assert_eq!(rx.try_next(), TryRecv::Empty);
        tx.push(1).unwrap();
        // Partial batch not yet shipped: still Empty from the consumer side.
        assert_eq!(rx.try_next(), TryRecv::Empty);
        assert!(!tx.is_empty());
        tx.push(2).unwrap(); // batch boundary: ships
        assert!(tx.is_empty());
        tx.push(3).unwrap();
        tx.flush().unwrap();
        assert_eq!(rx.queued_batches(), 2);
        assert_eq!(rx.try_next(), TryRecv::Item(1));
        assert_eq!(rx.try_next(), TryRecv::Item(2));
        assert_eq!(rx.try_next(), TryRecv::Item(3));
        assert_eq!(rx.try_next(), TryRecv::Empty);
        drop(tx);
        assert_eq!(rx.try_next(), TryRecv::Disconnected);
    }

    #[test]
    fn channel_survives_a_panic_while_lock_is_held() {
        // Poison the state mutex by panicking inside a send on another
        // thread is hard to arrange deterministically; instead poison it
        // directly and confirm every entry point recovers.
        let (tx, rx) = channel::<u32>(4);
        let shared = Arc::clone(&tx.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.state.lock().unwrap();
            panic!("poison the spsc mutex");
        })
        .join();
        assert!(tx.shared.state.is_poisoned());
        tx.send(5).unwrap();
        assert_eq!(rx.queued(), 1);
        assert_eq!(rx.try_recv(), TryRecv::Item(5));
        assert_eq!(rx.try_recv(), TryRecv::Empty);
        drop(tx);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn bound_applies_backpressure() {
        let (tx, rx) = channel::<u32>(1);
        tx.send(1).unwrap();
        // A second send must block until the consumer takes one; run it on
        // a helper thread and confirm it completes once we recv.
        let helper = std::thread::spawn(move || tx.send(2).is_ok());
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert!(helper.join().unwrap());
    }
}
