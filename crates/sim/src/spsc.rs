//! A minimal bounded single-producer single-consumer channel.
//!
//! Built on `Mutex` + `Condvar` only (the workspace is offline and vendors
//! no concurrency crates). One producer hands fixed-size work chunks to one
//! consumer; the bound provides backpressure so a fast simulator cannot
//! buffer an unbounded backlog ahead of a slow analysis thread. Dropping
//! the [`Sender`] closes the channel ([`Receiver::recv`] drains what is
//! buffered, then returns `None`); dropping the [`Receiver`] makes further
//! [`Sender::send`] calls fail fast with the rejected value.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    buf: VecDeque<T>,
    producer_alive: bool,
    consumer_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

/// The producing half. Not clonable: single producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half. Not clonable: single consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A bounded channel of at most `capacity` in-flight items.
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(capacity.max(1)),
            producer_alive: true,
            consumer_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity: capacity.max(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until a slot frees up, then enqueues `value`. Returns the
    /// value back if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut state = self.shared.state.lock().expect("spsc lock poisoned");
        while state.buf.len() >= self.shared.capacity && state.consumer_alive {
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("spsc lock poisoned");
        }
        if !state.consumer_alive {
            return Err(value);
        }
        state.buf.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives; `None` once the sender is gone and the
    /// buffer is drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("spsc lock poisoned");
        while state.buf.is_empty() && state.producer_alive {
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("spsc lock poisoned");
        }
        let item = state.buf.pop_front();
        drop(state);
        if item.is_some() {
            self.shared.not_full.notify_one();
        }
        item
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("spsc lock poisoned");
        state.producer_alive = false;
        drop(state);
        self.shared.not_empty.notify_one();
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("spsc lock poisoned");
        state.consumer_alive = false;
        drop(state);
        self.shared.not_full.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_across_threads() {
        let (tx, rx) = channel::<u32>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn recv_drains_buffer_after_sender_drops() {
        let (tx, rx) = channel::<u32>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_fails_fast_after_receiver_drops() {
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn bound_applies_backpressure() {
        let (tx, rx) = channel::<u32>(1);
        tx.send(1).unwrap();
        // A second send must block until the consumer takes one; run it on
        // a helper thread and confirm it completes once we recv.
        let helper = std::thread::spawn(move || tx.send(2).is_ok());
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert!(helper.join().unwrap());
    }
}
