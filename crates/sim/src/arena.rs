//! Bounded per-shard buffer arenas.
//!
//! The simulator's hot loops recycle a handful of buffer shapes at high
//! frequency: timing-wheel slot buffers and spill buckets in
//! [`crate::events`], interferer lists in [`crate::medium`]. Before this
//! module each site hand-rolled its own recycling (or dropped buffers
//! straight back to the allocator), and the lockstep executor paid that
//! churn once per shard per window.
//!
//! [`VecPool`] is the shared primitive: a bounded free-list arena of
//! `Vec<T>` buffers. It is *not* a classic bump arena — wheel entries and
//! in-flight transmissions outlive any single window, and byte-identity
//! pins the exact order buffers are filled and drained, so a
//! reset-the-high-water-mark allocator cannot apply. A free-list with a
//! retention policy gives the same effect the arena is after (steady-state
//! windows perform zero allocator traffic) without perturbing any
//! observable order.
//!
//! Each [`crate::sim::Simulator`] — and therefore each lockstep shard —
//! owns its pools outright; nothing here is shared or synchronized.
//!
//! Retention policy, and why it is RSS-safe: `put` keeps at most
//! `max_spares` buffers, and drops any buffer whose capacity exceeds
//! `max_retain_cap` (burst-grown outliers would otherwise pin their peak
//! footprint forever — the regression the timing wheel's `SLOT_RETAIN_CAP`
//! originally fixed by freeing oversized buffers). The resident ceiling is
//! thus `max_spares × max_retain_cap × size_of::<T>()` per pool, chosen at
//! construction to be a few tens of kilobytes.

/// A bounded free-list of reusable `Vec<T>` buffers.
pub struct VecPool<T> {
    spares: Vec<Vec<T>>,
    max_spares: usize,
    max_retain_cap: usize,
}

impl<T> VecPool<T> {
    /// An empty pool retaining at most `max_spares` buffers of at most
    /// `max_retain_cap` elements capacity each.
    pub const fn new(max_spares: usize, max_retain_cap: usize) -> Self {
        VecPool {
            spares: Vec::new(),
            max_spares,
            max_retain_cap,
        }
    }

    /// A recycled buffer (empty, capacity warm from its last use), or a
    /// fresh zero-capacity one when the pool is dry.
    #[inline]
    pub fn take(&mut self) -> Vec<T> {
        self.spares.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool. Cleared immediately; retained only
    /// while it fits the pool's retention policy, otherwise dropped to the
    /// allocator (that is the RSS bound, not an error).
    #[inline]
    pub fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        if v.capacity() > 0
            && v.capacity() <= self.max_retain_cap
            && self.spares.len() < self.max_spares
        {
            self.spares.push(v);
        }
    }

    /// Buffers currently waiting for reuse.
    pub fn spares(&self) -> usize {
        self.spares.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_put_buffers() {
        let mut pool: VecPool<u32> = VecPool::new(4, 64);
        let mut v = pool.take();
        v.extend([1, 2, 3]);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.spares(), 1);
        let v = pool.take();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), cap);
        assert_eq!(pool.spares(), 0);
    }

    #[test]
    fn retention_policy_bounds_spares_and_capacity() {
        let mut pool: VecPool<u8> = VecPool::new(2, 16);
        // Oversized buffers are dropped, not retained.
        pool.put(Vec::with_capacity(17));
        assert_eq!(pool.spares(), 0);
        // Zero-capacity buffers are not worth retaining.
        pool.put(Vec::new());
        assert_eq!(pool.spares(), 0);
        // The spare count is capped.
        for _ in 0..5 {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.spares(), 2);
    }
}
