//! Multirate adaptation algorithms.
//!
//! The 802.11 standard leaves rate selection to the vendor (Section 3 of the
//! paper); this module provides the family the study discusses:
//!
//! * [`Arf`] — Auto Rate Fallback (Kamerman & Monteban), the generic scheme
//!   the paper attributes to commodity cards: step down after consecutive
//!   failures, step up after a train of successes. Crucially it cannot tell
//!   collision losses from channel losses — the deficiency the paper blames
//!   for congestion collapse.
//! * [`Aarf`] — Adaptive ARF: doubles the success train required after a
//!   failed upshift probe, reducing rate flapping.
//! * [`FixedRate`] — no adaptation; the paper's Section 7 suggests staying
//!   at a high rate under congestion.
//! * [`SnrRate`] — an RBAR/OAR-style SNR-threshold chooser, the "alternate
//!   scheme that may offer some relief" of Section 7.

use wifi_frames::phy::Rate;

/// Feedback a transmitter gives its rate adapter after each attempt.
pub trait RateAdapter: Send {
    /// The rate to use for the next transmission attempt to this peer.
    /// `snr_hint_db` is the most recent SNR observed from the peer (e.g.
    /// from its ACKs), when available.
    fn rate(&self, snr_hint_db: Option<f64>) -> Rate;

    /// Called after an attempt that was acknowledged.
    fn on_success(&mut self);

    /// Called after an attempt whose ACK (or CTS) never arrived.
    fn on_failure(&mut self);

    /// Called when the MSDU is abandoned past the retry limit.
    fn on_drop(&mut self) {
        // Default: treated as one more failure signal.
        self.on_failure();
    }
}

/// Classic Auto Rate Fallback.
#[derive(Clone, Debug)]
pub struct Arf {
    rate: Rate,
    consecutive_ok: u32,
    consecutive_fail: u32,
    /// Successes required to step up (10 in the original WaveLAN II design).
    pub up_after: u32,
    /// Failures required to step down (2 in the original design).
    pub down_after: u32,
    /// True right after an upshift: the first failure at the new rate drops
    /// straight back down (the "probe" behaviour).
    probing: bool,
}

impl Arf {
    /// A new adapter starting at the given rate.
    pub fn new(start: Rate) -> Arf {
        Arf {
            rate: start,
            consecutive_ok: 0,
            consecutive_fail: 0,
            up_after: 10,
            down_after: 2,
            probing: false,
        }
    }
}

impl RateAdapter for Arf {
    fn rate(&self, _snr_hint_db: Option<f64>) -> Rate {
        self.rate
    }

    fn on_success(&mut self) {
        self.consecutive_fail = 0;
        self.consecutive_ok += 1;
        self.probing = false;
        if self.consecutive_ok >= self.up_after {
            if let Some(up) = self.rate.step_up() {
                self.rate = up;
                self.probing = true;
            }
            self.consecutive_ok = 0;
        }
    }

    fn on_failure(&mut self) {
        self.consecutive_ok = 0;
        self.consecutive_fail += 1;
        let drop_now = self.probing || self.consecutive_fail >= self.down_after;
        if drop_now {
            if let Some(down) = self.rate.step_down() {
                self.rate = down;
            }
            self.consecutive_fail = 0;
            self.probing = false;
        }
    }
}

/// Adaptive ARF: each failed probe doubles the success train required before
/// the next upshift attempt, up to a cap.
#[derive(Clone, Debug)]
pub struct Aarf {
    inner: Arf,
    base_up_after: u32,
    max_up_after: u32,
}

impl Aarf {
    /// A new adapter starting at the given rate.
    pub fn new(start: Rate) -> Aarf {
        Aarf {
            inner: Arf::new(start),
            base_up_after: 10,
            max_up_after: 160,
        }
    }
}

impl RateAdapter for Aarf {
    fn rate(&self, hint: Option<f64>) -> Rate {
        self.inner.rate(hint)
    }

    fn on_success(&mut self) {
        self.inner.on_success();
    }

    fn on_failure(&mut self) {
        let was_probing = self.inner.probing;
        self.inner.on_failure();
        if was_probing {
            self.inner.up_after = (self.inner.up_after * 2).min(self.max_up_after);
        } else if self.inner.consecutive_fail == 0 {
            // A regular (non-probe) downshift resets the train requirement.
            self.inner.up_after = self.base_up_after;
        }
    }
}

/// No adaptation: always the configured rate.
#[derive(Clone, Copy, Debug)]
pub struct FixedRate(pub Rate);

impl RateAdapter for FixedRate {
    fn rate(&self, _snr_hint_db: Option<f64>) -> Rate {
        self.0
    }
    fn on_success(&mut self) {}
    fn on_failure(&mut self) {}
    fn on_drop(&mut self) {}
}

/// SNR-threshold rate selection: picks the fastest rate whose threshold the
/// observed SNR clears with a configurable margin. Collision losses do not
/// perturb it — the key property Section 7 argues for.
#[derive(Clone, Copy, Debug)]
pub struct SnrRate {
    /// Safety margin in dB above each rate's minimum SNR.
    pub margin_db: f64,
    /// Rate used before any SNR observation exists.
    pub fallback: Rate,
}

impl SnrRate {
    /// A new adapter with the given margin.
    pub fn new(margin_db: f64) -> SnrRate {
        SnrRate {
            margin_db,
            fallback: Rate::R1,
        }
    }
}

impl RateAdapter for SnrRate {
    fn rate(&self, snr_hint_db: Option<f64>) -> Rate {
        let Some(snr) = snr_hint_db else {
            return self.fallback;
        };
        let mut chosen = Rate::R1;
        for r in Rate::ALL {
            if snr >= r.min_snr_db() + self.margin_db {
                chosen = r;
            }
        }
        chosen
    }
    fn on_success(&mut self) {}
    fn on_failure(&mut self) {}
    fn on_drop(&mut self) {}
}

/// Which adapter a station uses — the configuration-level enum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RateAdaptation {
    /// Classic ARF starting at the given rate.
    Arf(Rate),
    /// Adaptive ARF starting at the given rate.
    Aarf(Rate),
    /// Fixed at the given rate.
    Fixed(Rate),
    /// SNR-threshold with the given margin in dB.
    Snr(f64),
}

impl RateAdaptation {
    /// Instantiates the adapter.
    pub fn build(self) -> Box<dyn RateAdapter> {
        match self {
            RateAdaptation::Arf(r) => Box::new(Arf::new(r)),
            RateAdaptation::Aarf(r) => Box::new(Aarf::new(r)),
            RateAdaptation::Fixed(r) => Box::new(FixedRate(r)),
            RateAdaptation::Snr(margin) => Box::new(SnrRate::new(margin)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arf_steps_down_after_two_failures() {
        let mut a = Arf::new(Rate::R11);
        a.on_failure();
        assert_eq!(a.rate(None), Rate::R11);
        a.on_failure();
        assert_eq!(a.rate(None), Rate::R5_5);
        a.on_failure();
        a.on_failure();
        assert_eq!(a.rate(None), Rate::R2);
        a.on_failure();
        a.on_failure();
        assert_eq!(a.rate(None), Rate::R1);
        // Floor at 1 Mbps.
        a.on_failure();
        a.on_failure();
        assert_eq!(a.rate(None), Rate::R1);
    }

    #[test]
    fn arf_steps_up_after_success_train() {
        let mut a = Arf::new(Rate::R1);
        for _ in 0..9 {
            a.on_success();
            assert_eq!(a.rate(None), Rate::R1);
        }
        a.on_success();
        assert_eq!(a.rate(None), Rate::R2);
    }

    #[test]
    fn arf_probe_failure_falls_back_immediately() {
        let mut a = Arf::new(Rate::R1);
        for _ in 0..10 {
            a.on_success();
        }
        assert_eq!(a.rate(None), Rate::R2);
        // One failure right after the upshift reverts it.
        a.on_failure();
        assert_eq!(a.rate(None), Rate::R1);
    }

    #[test]
    fn arf_success_clears_failure_streak() {
        let mut a = Arf::new(Rate::R11);
        a.on_failure();
        a.on_success();
        a.on_failure();
        assert_eq!(a.rate(None), Rate::R11, "streak was broken");
    }

    #[test]
    fn arf_ceiling_at_11() {
        let mut a = Arf::new(Rate::R11);
        for _ in 0..50 {
            a.on_success();
        }
        assert_eq!(a.rate(None), Rate::R11);
    }

    #[test]
    fn aarf_doubles_probe_train_on_probe_failure() {
        let mut a = Aarf::new(Rate::R1);
        for _ in 0..10 {
            a.on_success();
        }
        assert_eq!(a.rate(None), Rate::R2);
        a.on_failure(); // probe fails
        assert_eq!(a.rate(None), Rate::R1);
        // Now 20 successes are needed.
        for _ in 0..19 {
            a.on_success();
        }
        assert_eq!(a.rate(None), Rate::R1);
        a.on_success();
        assert_eq!(a.rate(None), Rate::R2);
    }

    #[test]
    fn aarf_train_is_capped() {
        let mut a = Aarf::new(Rate::R1);
        for _ in 0..10 {
            for _ in 0..200 {
                a.on_success();
            }
            a.on_failure(); // fail every probe
        }
        assert!(a.inner.up_after <= 160);
    }

    #[test]
    fn fixed_never_moves() {
        let mut f = FixedRate(Rate::R11);
        for _ in 0..100 {
            f.on_failure();
        }
        assert_eq!(f.rate(None), Rate::R11);
    }

    #[test]
    fn snr_rate_thresholds() {
        let s = SnrRate::new(3.0);
        assert_eq!(s.rate(None), Rate::R1, "no hint: fallback");
        assert_eq!(s.rate(Some(5.0)), Rate::R1);
        assert_eq!(s.rate(Some(9.5)), Rate::R2);
        assert_eq!(s.rate(Some(11.5)), Rate::R5_5);
        assert_eq!(s.rate(Some(13.0)), Rate::R11);
        assert_eq!(s.rate(Some(40.0)), Rate::R11);
    }

    #[test]
    fn snr_rate_ignores_loss_feedback() {
        let mut s = SnrRate::new(3.0);
        for _ in 0..100 {
            s.on_failure();
        }
        assert_eq!(s.rate(Some(40.0)), Rate::R11);
    }

    #[test]
    fn config_enum_builds_each_kind() {
        for (cfg, expect) in [
            (RateAdaptation::Arf(Rate::R11), Rate::R11),
            (RateAdaptation::Aarf(Rate::R5_5), Rate::R5_5),
            (RateAdaptation::Fixed(Rate::R2), Rate::R2),
        ] {
            assert_eq!(cfg.build().rate(None), expect);
        }
        assert_eq!(RateAdaptation::Snr(3.0).build().rate(Some(40.0)), Rate::R11);
    }
}
