//! The shared radio medium of one channel.
//!
//! Tracks in-flight transmissions and, for each, every other transmission
//! that overlapped it in time — the interferer set from which receivers
//! compute SINR. Propagation delay is neglected (a conference hall is well
//! under one microsecond across).
//!
//! Interferers are stored as node ids only: positions are fixed per
//! scenario, so receivers look the interferer path loss up in the cached
//! [`SensingTopology`](crate::topology::SensingTopology) instead of
//! carrying positions around. The `sensed_by` listener set is a pooled
//! [`NodeSet`] bitset, and interferer lists are pooled too (via the
//! [`crate::arena`] free-list) — ending a transmission recycles both, so
//! steady-state operation allocates nothing.

use crate::arena::VecPool;
use crate::events::NodeId;
use crate::frame_info::SimFrame;
use crate::topology::NodeSet;
use wifi_frames::phy::Rate;
use wifi_frames::timing::Micros;

/// Tail-overlap guard: a transmission whose last `OVERLAP_GUARD_US`
/// microseconds (or less) overlap another's start is *not* registered as an
/// interferer of that other transmission (and vice versa).
///
/// Physically this is one SIFS — by the time a new preamble could put
/// energy on the air, a frame with under one SIFS left is into its final
/// symbols and the receiver's PHY pipeline has already committed to them;
/// a sub-SIFS tail graze does not flip the decode. Structurally it is the
/// keystone of lockstep sharding ([`crate::shard`]): with lockstep windows
/// no wider than the guard, a transmission whose end was processed inside a
/// window can never retroactively gain an interferer from a remote start
/// in the same window, so cross-shard notices exchanged at window
/// boundaries are always *early enough* (see `docs/DETERMINISM.md`).
pub const OVERLAP_GUARD_US: Micros = 10;

/// One transmission in flight (or just completed).
#[derive(Clone, Debug)]
pub struct Transmission {
    /// Medium-assigned id.
    pub tx_id: u64,
    /// Transmitting node.
    pub node: NodeId,
    /// The frame.
    pub frame: SimFrame,
    /// PHY rate.
    pub rate: Rate,
    /// Air start time.
    pub start: Micros,
    /// Air end time.
    pub end: Micros,
    /// Node of every other transmission that overlapped this one beyond the
    /// tail guard, in ascending node order (receivers resolve path loss via
    /// the topology cache; the fixed order keeps float SINR sums bit-stable
    /// across materializations).
    pub interferers: Vec<NodeId>,
    /// Stations whose carrier sense this transmission raised (computed by
    /// the simulator at start; used to release carrier sense at end).
    pub sensed_by: NodeSet,
    /// Whether the busy indication has already been applied at listeners
    /// (set when the carrier-sense detection delay elapses).
    pub cs_applied: bool,
    /// True for a transmission mirrored from another lockstep shard via
    /// [`Medium::register_remote`]: it interferes and is received/sniffed
    /// here, but its ground-truth accounting happens at its owner shard.
    pub ghost: bool,
}

/// Keeps an interferer list sorted by ascending node id (no duplicates
/// arise: a node has at most one transmission in flight).
fn insert_sorted(list: &mut Vec<NodeId>, node: NodeId) {
    let pos = list.partition_point(|&n| n < node);
    list.insert(pos, node);
}

/// Interferer-list buffers the medium's arena keeps warm; both bounds
/// comfortably exceed the concurrent-transmission count of any cell while
/// capping the arena's resident ceiling in the tens of kilobytes.
const LIST_POOL_SPARES: usize = 64;
/// Largest capacity (node ids) a retained interferer list may have.
const LIST_POOL_RETAIN_CAP: usize = 256;

/// The medium of a single channel.
pub struct Medium {
    active: Vec<Transmission>,
    next_tx_id: u64,
    /// Running count of transmissions that suffered at least one overlap.
    pub collisions: u64,
    /// Running count of all transmissions.
    pub transmissions: u64,
    /// Recycled listener bitsets (returned by [`Medium::recycle`]).
    set_pool: Vec<NodeSet>,
    /// Recycled interferer lists (a bounded [`crate::arena`] free-list;
    /// concurrent-transmission counts keep it tiny in practice).
    list_pool: VecPool<NodeId>,
}

impl Default for Medium {
    fn default() -> Medium {
        Medium {
            active: Vec::new(),
            next_tx_id: 0,
            collisions: 0,
            transmissions: 0,
            set_pool: Vec::new(),
            list_pool: VecPool::new(LIST_POOL_SPARES, LIST_POOL_RETAIN_CAP),
        }
    }
}

impl Medium {
    /// An idle medium.
    pub fn new() -> Medium {
        Medium::default()
    }

    /// A cleared listener set from the pool (or a fresh one), for the
    /// caller to fill and hand to [`Medium::start_tx`].
    pub fn take_set(&mut self) -> NodeSet {
        self.set_pool.pop().unwrap_or_default()
    }

    /// Registers a transmission; returns its id. Every already-active
    /// transmission whose transmitter is RF-coupled to `node` (per the
    /// `coupled` predicate — the topology's pair-coupling floor) and whose
    /// remaining air time exceeds [`OVERLAP_GUARD_US`] becomes a mutual
    /// interferer; uncoupled and sub-guard tail overlaps are physically
    /// negligible and excluding them here is what keeps interferer lists —
    /// and the collision counter — identical whether a channel is simulated
    /// whole or split into shards. `sensed_by` is the listener set the
    /// simulator computed for this transmission.
    #[allow(clippy::too_many_arguments)]
    pub fn start_tx(
        &mut self,
        node: NodeId,
        frame: SimFrame,
        rate: Rate,
        start: Micros,
        end: Micros,
        sensed_by: NodeSet,
        coupled: impl Fn(NodeId) -> bool,
    ) -> u64 {
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        let mut interferers = self.list_pool.take();
        for other in &mut self.active {
            // `other` started no later than `start`; the pair interferes iff
            // the earlier transmission outlives the later one's start by
            // more than the tail guard.
            if !coupled(other.node) || other.end <= start + OVERLAP_GUARD_US {
                continue;
            }
            insert_sorted(&mut other.interferers, node);
            insert_sorted(&mut interferers, other.node);
        }
        self.transmissions += 1;
        self.active.push(Transmission {
            tx_id,
            node,
            frame,
            rate,
            start,
            end,
            interferers,
            sensed_by,
            cs_applied: false,
            ghost: false,
        });
        tx_id
    }

    /// Mirrors a transmission owned by another lockstep shard into this
    /// medium; returns its (local) id. The ghost interferes with — and
    /// collects interference from — every coupled transmission already
    /// active here, under the same symmetric tail-guard rule as
    /// [`Medium::start_tx`], but written for arbitrary start order: ghosts
    /// arrive at window boundaries, after local transmissions that started
    /// *later* than the ghost did. Ghosts do not count toward
    /// `transmissions`; their ground truth is kept by the owner shard.
    #[allow(clippy::too_many_arguments)]
    pub fn register_remote(
        &mut self,
        node: NodeId,
        frame: SimFrame,
        rate: Rate,
        start: Micros,
        end: Micros,
        sensed_by: NodeSet,
        coupled: impl Fn(NodeId) -> bool,
    ) -> u64 {
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        let mut interferers = self.list_pool.take();
        for other in &mut self.active {
            if !coupled(other.node) {
                continue;
            }
            // Same predicate as start_tx, symmetric in start order: the
            // earlier-starting transmission must outlive the later one's
            // start by more than the tail guard.
            let mutual = if start <= other.start {
                end > other.start + OVERLAP_GUARD_US
            } else {
                other.end > start + OVERLAP_GUARD_US
            };
            if !mutual {
                continue;
            }
            insert_sorted(&mut other.interferers, node);
            insert_sorted(&mut interferers, other.node);
        }
        self.active.push(Transmission {
            tx_id,
            node,
            frame,
            rate,
            start,
            end,
            interferers,
            sensed_by,
            cs_applied: false,
            ghost: true,
        });
        tx_id
    }

    /// Removes and returns a completed transmission, counting it into
    /// `collisions` if it suffered at least one overlap (ghosts are counted
    /// by their owner shard). Hand it back via [`Medium::recycle`] when
    /// done to keep the pools warm.
    pub fn end_tx(&mut self, tx_id: u64) -> Option<Transmission> {
        let idx = self.active.iter().position(|t| t.tx_id == tx_id)?;
        let tx = self.active.swap_remove(idx);
        if !tx.ghost && !tx.interferers.is_empty() {
            self.collisions += 1;
        }
        Some(tx)
    }

    /// Returns a finished transmission's buffers to the pools.
    pub fn recycle(&mut self, tx: Transmission) {
        let Transmission {
            mut sensed_by,
            interferers,
            ..
        } = tx;
        sensed_by.clear();
        self.set_pool.push(sensed_by);
        self.list_pool.put(interferers);
    }

    /// Active transmissions (for carrier-sense queries).
    pub fn active(&self) -> &[Transmission] {
        &self.active
    }

    /// Mutable access to active transmissions (for channel-switch
    /// bookkeeping).
    pub fn active_mut(&mut self) -> &mut [Transmission] {
        &mut self.active
    }

    /// Marks a transmission's carrier sense as applied at its listeners.
    pub fn mark_cs_applied(&mut self, tx_id: u64) {
        if let Some(t) = self.active.iter_mut().find(|t| t.tx_id == tx_id) {
            t.cs_applied = true;
        }
    }

    /// True when any transmission is in flight.
    pub fn is_transmitting(&self) -> bool {
        !self.active.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::mac::MacAddr;

    fn frame() -> SimFrame {
        SimFrame::ack(MacAddr::from_id(1))
    }

    fn start(m: &mut Medium, node: NodeId, start: Micros, end: Micros) -> u64 {
        let set = m.take_set();
        m.start_tx(node, frame(), Rate::R1, start, end, set, |_| true)
    }

    #[test]
    fn single_tx_lifecycle() {
        let mut m = Medium::new();
        assert!(!m.is_transmitting());
        let id = start(&mut m, 0, 0, 304);
        assert!(m.is_transmitting());
        assert_eq!(m.active().len(), 1);
        let tx = m.end_tx(id).unwrap();
        assert!(tx.interferers.is_empty());
        assert!(!m.is_transmitting());
        assert_eq!(m.collisions, 0);
        assert_eq!(m.transmissions, 1);
    }

    #[test]
    fn overlap_registers_mutual_interference() {
        let mut m = Medium::new();
        let a = start(&mut m, 0, 0, 1000);
        let b = start(&mut m, 1, 500, 900);
        let tb = m.end_tx(b).unwrap();
        assert_eq!(tb.interferers, vec![0]);
        assert_eq!(m.collisions, 1, "b suffered the overlap");
        let ta = m.end_tx(a).unwrap();
        assert_eq!(ta.interferers, vec![1]);
        assert_eq!(m.collisions, 2, "both parties of the overlap count");
    }

    #[test]
    fn sub_guard_tail_overlap_is_ignored() {
        let mut m = Medium::new();
        // `a` has exactly OVERLAP_GUARD_US of air left when `b` starts:
        // the tail graze registers nothing, in either direction.
        let a = start(&mut m, 0, 0, 500 + OVERLAP_GUARD_US);
        let b = start(&mut m, 1, 500, 900);
        let ta = m.end_tx(a).unwrap();
        assert!(ta.interferers.is_empty());
        let tb = m.end_tx(b).unwrap();
        assert!(tb.interferers.is_empty());
        assert_eq!(m.collisions, 0);
    }

    #[test]
    fn remote_ghost_interferes_but_is_not_counted() {
        let mut m = Medium::new();
        // A local transmission starts at 600; the ghost (registered later,
        // at a window boundary) started at 500 — *before* the local one.
        let a = start(&mut m, 0, 600, 1600);
        let set = m.take_set();
        let g = m.register_remote(7, frame(), Rate::R1, 500, 1500, set, |_| true);
        assert_eq!(m.transmissions, 1, "ghosts are owned elsewhere");
        let tg = m.end_tx(g).unwrap();
        assert!(tg.ghost);
        assert_eq!(tg.interferers, vec![0]);
        assert_eq!(m.collisions, 0, "ghost collisions count at the owner");
        let ta = m.end_tx(a).unwrap();
        assert_eq!(ta.interferers, vec![7]);
        assert_eq!(m.collisions, 1);
    }

    #[test]
    fn interferer_lists_stay_sorted_by_node() {
        let mut m = Medium::new();
        let a = start(&mut m, 5, 0, 10_000);
        for node in [9, 2, 7] {
            let id = start(&mut m, node, 100, 5_000);
            let tx = m.end_tx(id).unwrap();
            m.recycle(tx);
        }
        let t = m.end_tx(a).unwrap();
        assert_eq!(t.interferers, vec![2, 7, 9]);
    }

    #[test]
    fn interference_accumulates_across_sequential_overlaps() {
        let mut m = Medium::new();
        let long = start(&mut m, 0, 0, 10_000);
        for i in 1..4 {
            let id = start(&mut m, i, 0, 100);
            let tx = m.end_tx(id).unwrap();
            m.recycle(tx);
        }
        let t = m.end_tx(long).unwrap();
        assert_eq!(t.interferers, vec![1, 2, 3], "keeps ended interferers");
    }

    #[test]
    fn recycled_buffers_come_back_empty() {
        let mut m = Medium::new();
        let a = start(&mut m, 0, 0, 1000);
        let b = start(&mut m, 1, 0, 900);
        let mut tx = m.end_tx(b).unwrap();
        tx.sensed_by.insert(5);
        assert!(!tx.interferers.is_empty());
        m.recycle(tx);
        let set = m.take_set();
        assert!(set.is_empty(), "pooled set is cleared");
        let c = m.start_tx(2, frame(), Rate::R1, 0, 10, set, |_| true);
        let tc = m.end_tx(c).unwrap();
        // The pooled interferer list was cleared before reuse: only the
        // still-active transmission shows up.
        assert_eq!(tc.interferers, vec![0]);
        let _ = m.end_tx(a);
    }

    #[test]
    fn end_unknown_tx_is_none() {
        let mut m = Medium::new();
        assert!(m.end_tx(99).is_none());
    }

    #[test]
    fn tx_ids_are_unique_and_monotone() {
        let mut m = Medium::new();
        let a = start(&mut m, 0, 0, 1);
        let b = start(&mut m, 1, 0, 1);
        assert!(b > a);
    }
}
