//! The shared radio medium of one channel.
//!
//! Tracks in-flight transmissions and, for each, every other transmission
//! that overlapped it in time — the interferer set from which receivers
//! compute SINR. Propagation delay is neglected (a conference hall is well
//! under one microsecond across).
//!
//! Interferers are stored as node ids only: positions are fixed per
//! scenario, so receivers look the interferer path loss up in the cached
//! [`SensingTopology`](crate::topology::SensingTopology) instead of
//! carrying positions around. The `sensed_by` listener set is a pooled
//! [`NodeSet`] bitset, and interferer lists are pooled too — ending a
//! transmission recycles both, so steady-state operation allocates nothing.

use crate::events::NodeId;
use crate::frame_info::SimFrame;
use crate::topology::NodeSet;
use wifi_frames::phy::Rate;
use wifi_frames::timing::Micros;

/// One transmission in flight (or just completed).
#[derive(Clone, Debug)]
pub struct Transmission {
    /// Medium-assigned id.
    pub tx_id: u64,
    /// Transmitting node.
    pub node: NodeId,
    /// The frame.
    pub frame: SimFrame,
    /// PHY rate.
    pub rate: Rate,
    /// Air start time.
    pub start: Micros,
    /// Air end time.
    pub end: Micros,
    /// Node of every other transmission that overlapped this one (grown as
    /// overlaps occur; receivers resolve path loss via the topology cache).
    pub interferers: Vec<NodeId>,
    /// Stations whose carrier sense this transmission raised (computed by
    /// the simulator at start; used to release carrier sense at end).
    pub sensed_by: NodeSet,
    /// Whether the busy indication has already been applied at listeners
    /// (set when the carrier-sense detection delay elapses).
    pub cs_applied: bool,
}

/// The medium of a single channel.
#[derive(Default)]
pub struct Medium {
    active: Vec<Transmission>,
    next_tx_id: u64,
    /// Running count of transmissions that suffered at least one overlap.
    pub collisions: u64,
    /// Running count of all transmissions.
    pub transmissions: u64,
    /// Recycled listener bitsets (returned by [`Medium::recycle`]).
    set_pool: Vec<NodeSet>,
    /// Recycled interferer lists.
    list_pool: Vec<Vec<NodeId>>,
}

impl Medium {
    /// An idle medium.
    pub fn new() -> Medium {
        Medium::default()
    }

    /// A cleared listener set from the pool (or a fresh one), for the
    /// caller to fill and hand to [`Medium::start_tx`].
    pub fn take_set(&mut self) -> NodeSet {
        self.set_pool.pop().unwrap_or_default()
    }

    /// Registers a transmission; returns its id. Every already-active
    /// transmission whose transmitter is RF-coupled to `node` (per the
    /// `coupled` predicate — the topology's pair-coupling floor) becomes a
    /// mutual interferer; uncoupled overlaps are physically negligible and
    /// excluding them here is what keeps interferer lists — and the
    /// collision counter — identical whether a channel is simulated whole
    /// or split into RF-isolation components. `sensed_by` is the listener
    /// set the simulator computed for this transmission.
    #[allow(clippy::too_many_arguments)]
    pub fn start_tx(
        &mut self,
        node: NodeId,
        frame: SimFrame,
        rate: Rate,
        start: Micros,
        end: Micros,
        sensed_by: NodeSet,
        coupled: impl Fn(NodeId) -> bool,
    ) -> u64 {
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        let mut interferers = self.list_pool.pop().unwrap_or_default();
        interferers.clear();
        for other in &mut self.active {
            if !coupled(other.node) {
                continue;
            }
            other.interferers.push(node);
            interferers.push(other.node);
        }
        if !interferers.is_empty() {
            self.collisions += 1;
        }
        self.transmissions += 1;
        self.active.push(Transmission {
            tx_id,
            node,
            frame,
            rate,
            start,
            end,
            interferers,
            sensed_by,
            cs_applied: false,
        });
        tx_id
    }

    /// Removes and returns a completed transmission. Hand it back via
    /// [`Medium::recycle`] when done to keep the pools warm.
    pub fn end_tx(&mut self, tx_id: u64) -> Option<Transmission> {
        let idx = self.active.iter().position(|t| t.tx_id == tx_id)?;
        Some(self.active.swap_remove(idx))
    }

    /// Returns a finished transmission's buffers to the pools.
    pub fn recycle(&mut self, tx: Transmission) {
        let Transmission {
            mut sensed_by,
            mut interferers,
            ..
        } = tx;
        sensed_by.clear();
        self.set_pool.push(sensed_by);
        interferers.clear();
        self.list_pool.push(interferers);
    }

    /// Active transmissions (for carrier-sense queries).
    pub fn active(&self) -> &[Transmission] {
        &self.active
    }

    /// Mutable access to active transmissions (for channel-switch
    /// bookkeeping).
    pub fn active_mut(&mut self) -> &mut [Transmission] {
        &mut self.active
    }

    /// Marks a transmission's carrier sense as applied at its listeners.
    pub fn mark_cs_applied(&mut self, tx_id: u64) {
        if let Some(t) = self.active.iter_mut().find(|t| t.tx_id == tx_id) {
            t.cs_applied = true;
        }
    }

    /// True when any transmission is in flight.
    pub fn is_transmitting(&self) -> bool {
        !self.active.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::mac::MacAddr;

    fn frame() -> SimFrame {
        SimFrame::ack(MacAddr::from_id(1))
    }

    fn start(m: &mut Medium, node: NodeId, start: Micros, end: Micros) -> u64 {
        let set = m.take_set();
        m.start_tx(node, frame(), Rate::R1, start, end, set, |_| true)
    }

    #[test]
    fn single_tx_lifecycle() {
        let mut m = Medium::new();
        assert!(!m.is_transmitting());
        let id = start(&mut m, 0, 0, 304);
        assert!(m.is_transmitting());
        assert_eq!(m.active().len(), 1);
        let tx = m.end_tx(id).unwrap();
        assert!(tx.interferers.is_empty());
        assert!(!m.is_transmitting());
        assert_eq!(m.collisions, 0);
        assert_eq!(m.transmissions, 1);
    }

    #[test]
    fn overlap_registers_mutual_interference() {
        let mut m = Medium::new();
        let a = start(&mut m, 0, 0, 1000);
        let b = start(&mut m, 1, 500, 900);
        let tb = m.end_tx(b).unwrap();
        assert_eq!(tb.interferers, vec![0]);
        let ta = m.end_tx(a).unwrap();
        assert_eq!(ta.interferers, vec![1]);
        assert_eq!(m.collisions, 1);
    }

    #[test]
    fn interference_accumulates_across_sequential_overlaps() {
        let mut m = Medium::new();
        let long = start(&mut m, 0, 0, 10_000);
        for i in 1..4 {
            let id = start(&mut m, i, 0, 100);
            let tx = m.end_tx(id).unwrap();
            m.recycle(tx);
        }
        let t = m.end_tx(long).unwrap();
        assert_eq!(t.interferers, vec![1, 2, 3], "keeps ended interferers");
    }

    #[test]
    fn recycled_buffers_come_back_empty() {
        let mut m = Medium::new();
        let a = start(&mut m, 0, 0, 1000);
        let b = start(&mut m, 1, 0, 900);
        let mut tx = m.end_tx(b).unwrap();
        tx.sensed_by.insert(5);
        assert!(!tx.interferers.is_empty());
        m.recycle(tx);
        let set = m.take_set();
        assert!(set.is_empty(), "pooled set is cleared");
        let c = m.start_tx(2, frame(), Rate::R1, 0, 10, set, |_| true);
        let tc = m.end_tx(c).unwrap();
        // The pooled interferer list was cleared before reuse: only the
        // still-active transmission shows up.
        assert_eq!(tc.interferers, vec![0]);
        let _ = m.end_tx(a);
    }

    #[test]
    fn end_unknown_tx_is_none() {
        let mut m = Medium::new();
        assert!(m.end_tx(99).is_none());
    }

    #[test]
    fn tx_ids_are_unique_and_monotone() {
        let mut m = Medium::new();
        let a = start(&mut m, 0, 0, 1);
        let b = start(&mut m, 1, 0, 1);
        assert!(b > a);
    }
}
