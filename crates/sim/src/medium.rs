//! The shared radio medium of one channel.
//!
//! Tracks in-flight transmissions and, for each, every other transmission
//! that overlapped it in time — the interferer set from which receivers
//! compute SINR. Propagation delay is neglected (a conference hall is well
//! under one microsecond across).

use crate::events::NodeId;
use crate::frame_info::SimFrame;
use crate::geometry::Pos;
use wifi_frames::phy::Rate;
use wifi_frames::timing::Micros;

/// One transmission in flight (or just completed).
#[derive(Clone, Debug)]
pub struct Transmission {
    /// Medium-assigned id.
    pub tx_id: u64,
    /// Transmitting node.
    pub node: NodeId,
    /// Transmitter position at start of transmission.
    pub pos: Pos,
    /// The frame.
    pub frame: SimFrame,
    /// PHY rate.
    pub rate: Rate,
    /// Air start time.
    pub start: Micros,
    /// Air end time.
    pub end: Micros,
    /// `(node, position)` of every other transmission that overlapped this
    /// one (grown as overlaps occur).
    pub interferer_pos: Vec<(NodeId, Pos)>,
    /// Stations whose carrier sense this transmission raised (set by the
    /// simulator at start; used to release carrier sense at end).
    pub sensed_by: Vec<NodeId>,
    /// Whether the busy indication has already been applied at listeners
    /// (set when the carrier-sense detection delay elapses).
    pub cs_applied: bool,
}

/// The medium of a single channel.
#[derive(Default)]
pub struct Medium {
    active: Vec<Transmission>,
    next_tx_id: u64,
    /// Running count of transmissions that suffered at least one overlap.
    pub collisions: u64,
    /// Running count of all transmissions.
    pub transmissions: u64,
}

impl Medium {
    /// An idle medium.
    pub fn new() -> Medium {
        Medium::default()
    }

    /// Registers a transmission; returns its id. Every already-active
    /// transmission becomes a mutual interferer.
    pub fn start_tx(
        &mut self,
        node: NodeId,
        pos: Pos,
        frame: SimFrame,
        rate: Rate,
        start: Micros,
        end: Micros,
    ) -> u64 {
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        let mut interferer_pos = Vec::new();
        for other in &mut self.active {
            other.interferer_pos.push((node, pos));
            interferer_pos.push((other.node, other.pos));
        }
        if !interferer_pos.is_empty() {
            self.collisions += 1;
        }
        self.transmissions += 1;
        self.active.push(Transmission {
            tx_id,
            node,
            pos,
            frame,
            rate,
            start,
            end,
            interferer_pos,
            sensed_by: Vec::new(),
            cs_applied: false,
        });
        tx_id
    }

    /// Records which stations sensed this transmission.
    pub fn set_sensed_by(&mut self, tx_id: u64, sensed_by: Vec<NodeId>) {
        if let Some(t) = self.active.iter_mut().find(|t| t.tx_id == tx_id) {
            t.sensed_by = sensed_by;
        }
    }

    /// Removes and returns a completed transmission.
    pub fn end_tx(&mut self, tx_id: u64) -> Option<Transmission> {
        let idx = self.active.iter().position(|t| t.tx_id == tx_id)?;
        Some(self.active.swap_remove(idx))
    }

    /// Active transmissions (for carrier-sense queries).
    pub fn active(&self) -> &[Transmission] {
        &self.active
    }

    /// Mutable access to active transmissions (for channel-switch
    /// bookkeeping).
    pub fn active_mut(&mut self) -> &mut [Transmission] {
        &mut self.active
    }

    /// Marks a transmission's carrier sense as applied at its listeners.
    pub fn mark_cs_applied(&mut self, tx_id: u64) {
        if let Some(t) = self.active.iter_mut().find(|t| t.tx_id == tx_id) {
            t.cs_applied = true;
        }
    }

    /// True when any transmission is in flight.
    pub fn is_transmitting(&self) -> bool {
        !self.active.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::mac::MacAddr;

    fn frame() -> SimFrame {
        SimFrame::ack(MacAddr::from_id(1))
    }

    #[test]
    fn single_tx_lifecycle() {
        let mut m = Medium::new();
        assert!(!m.is_transmitting());
        let id = m.start_tx(0, Pos::new(0.0, 0.0), frame(), Rate::R1, 0, 304);
        assert!(m.is_transmitting());
        assert_eq!(m.active().len(), 1);
        let tx = m.end_tx(id).unwrap();
        assert!(tx.interferer_pos.is_empty());
        assert!(!m.is_transmitting());
        assert_eq!(m.collisions, 0);
        assert_eq!(m.transmissions, 1);
    }

    #[test]
    fn overlap_registers_mutual_interference() {
        let mut m = Medium::new();
        let a = m.start_tx(0, Pos::new(0.0, 0.0), frame(), Rate::R1, 0, 1000);
        let b = m.start_tx(1, Pos::new(10.0, 0.0), frame(), Rate::R1, 500, 900);
        let tb = m.end_tx(b).unwrap();
        assert_eq!(tb.interferer_pos.len(), 1);
        assert_eq!(tb.interferer_pos[0], (0, Pos::new(0.0, 0.0)));
        let ta = m.end_tx(a).unwrap();
        assert_eq!(ta.interferer_pos.len(), 1);
        assert_eq!(ta.interferer_pos[0], (1, Pos::new(10.0, 0.0)));
        assert_eq!(m.collisions, 1);
    }

    #[test]
    fn interference_accumulates_across_sequential_overlaps() {
        let mut m = Medium::new();
        let long = m.start_tx(0, Pos::new(0.0, 0.0), frame(), Rate::R1, 0, 10_000);
        for i in 1..4 {
            let id = m.start_tx(i, Pos::new(i as f64, 0.0), frame(), Rate::R11, 0, 100);
            m.end_tx(id).unwrap();
        }
        let t = m.end_tx(long).unwrap();
        assert_eq!(t.interferer_pos.len(), 3, "keeps ended interferers");
    }

    #[test]
    fn end_unknown_tx_is_none() {
        let mut m = Medium::new();
        assert!(m.end_tx(99).is_none());
    }

    #[test]
    fn tx_ids_are_unique_and_monotone() {
        let mut m = Medium::new();
        let a = m.start_tx(0, Pos::default(), frame(), Rate::R1, 0, 1);
        let b = m.start_tx(1, Pos::default(), frame(), Rate::R1, 0, 1);
        assert!(b > a);
    }
}
