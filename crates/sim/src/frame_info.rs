//! The simulator's lightweight frame descriptor.
//!
//! Full byte-level [`wifi_frames::Frame`]s are only materialized when a trace
//! is exported to pcap; on the hot path the simulator moves [`SimFrame`]
//! descriptors, which carry exactly the fields the MAC rules and the
//! analysis need.

use wifi_frames::fc::{FcFlags, FrameKind};
use wifi_frames::frame::{self, Ack, Beacon, Cts, Data, Frame, Rts, SeqCtl};
use wifi_frames::mac::MacAddr;
use wifi_frames::phy::{Channel, Rate};
use wifi_frames::record::FrameRecord;
use wifi_frames::timing::Micros;

/// A frame in flight inside the simulator.
#[derive(Clone, Debug)]
pub struct SimFrame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Transmitter address (absent for CTS/ACK, as on air).
    pub src: Option<MacAddr>,
    /// Receiver address.
    pub dst: MacAddr,
    /// BSSID, when the frame carries one.
    pub bssid: Option<MacAddr>,
    /// Retry flag.
    pub retry: bool,
    /// Sequence number, for data/management frames.
    pub seq: Option<u16>,
    /// NAV duration field, microseconds.
    pub duration_us: u16,
    /// Data payload bytes (zero except for data frames).
    pub payload_bytes: u32,
    /// Total MAC frame bytes on air, FCS included.
    pub mac_bytes: u32,
    /// True for to-DS (client→AP) data frames; false for from-DS.
    pub to_ds: bool,
    /// More fragments of this MSDU follow (fragment bursts).
    pub more_frag: bool,
    /// Fragment number within the MSDU.
    pub frag: u8,
}

impl SimFrame {
    /// A data frame descriptor.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        src: MacAddr,
        dst: MacAddr,
        bssid: MacAddr,
        seq: u16,
        payload_bytes: u32,
        retry: bool,
        duration_us: u16,
        to_ds: bool,
    ) -> SimFrame {
        SimFrame {
            kind: FrameKind::Data,
            src: Some(src),
            dst,
            bssid: Some(bssid),
            retry,
            seq: Some(seq),
            duration_us,
            payload_bytes,
            mac_bytes: frame::DATA_OVERHEAD_BYTES as u32 + payload_bytes,
            to_ds,
            more_frag: false,
            frag: 0,
        }
    }

    /// A data-fragment descriptor: one fragment of a larger MSDU.
    #[allow(clippy::too_many_arguments)]
    pub fn data_fragment(
        src: MacAddr,
        dst: MacAddr,
        bssid: MacAddr,
        seq: u16,
        frag: u8,
        payload_bytes: u32,
        retry: bool,
        duration_us: u16,
        to_ds: bool,
        more_frag: bool,
    ) -> SimFrame {
        let mut f = SimFrame::data(
            src,
            dst,
            bssid,
            seq,
            payload_bytes,
            retry,
            duration_us,
            to_ds,
        );
        f.frag = frag;
        f.more_frag = more_frag;
        f
    }

    /// An RTS descriptor.
    pub fn rts(src: MacAddr, dst: MacAddr, duration_us: u16) -> SimFrame {
        SimFrame {
            kind: FrameKind::Rts,
            src: Some(src),
            dst,
            bssid: None,
            retry: false,
            seq: None,
            duration_us,
            payload_bytes: 0,
            mac_bytes: frame::RTS_BYTES as u32,
            to_ds: false,
            more_frag: false,
            frag: 0,
        }
    }

    /// A CTS descriptor.
    pub fn cts(dst: MacAddr, duration_us: u16) -> SimFrame {
        SimFrame {
            kind: FrameKind::Cts,
            src: None,
            dst,
            bssid: None,
            retry: false,
            seq: None,
            duration_us,
            payload_bytes: 0,
            mac_bytes: frame::CTS_BYTES as u32,
            to_ds: false,
            more_frag: false,
            frag: 0,
        }
    }

    /// An ACK descriptor.
    pub fn ack(dst: MacAddr) -> SimFrame {
        SimFrame {
            kind: FrameKind::Ack,
            src: None,
            dst,
            bssid: None,
            retry: false,
            seq: None,
            duration_us: 0,
            payload_bytes: 0,
            mac_bytes: frame::ACK_BYTES as u32,
            to_ds: false,
            more_frag: false,
            frag: 0,
        }
    }

    /// A beacon descriptor. `body_bytes` is the management body size, which
    /// depends on the SSID length.
    pub fn beacon(ap: MacAddr, seq: u16, body_bytes: u32) -> SimFrame {
        SimFrame {
            kind: FrameKind::Beacon,
            src: Some(ap),
            dst: MacAddr::BROADCAST,
            bssid: Some(ap),
            retry: false,
            seq: Some(seq),
            duration_us: 0,
            payload_bytes: 0,
            mac_bytes: frame::MGMT_OVERHEAD_BYTES as u32 + body_bytes,
            to_ds: false,
            more_frag: false,
            frag: 0,
        }
    }

    /// A management frame descriptor (association handshake, etc.).
    #[allow(clippy::too_many_arguments)]
    pub fn mgmt(
        kind: FrameKind,
        src: MacAddr,
        dst: MacAddr,
        bssid: MacAddr,
        seq: u16,
        body_bytes: u32,
        retry: bool,
        duration_us: u16,
    ) -> SimFrame {
        SimFrame {
            kind,
            src: Some(src),
            dst,
            bssid: Some(bssid),
            retry,
            seq: Some(seq),
            duration_us,
            payload_bytes: 0,
            mac_bytes: frame::MGMT_OVERHEAD_BYTES as u32 + body_bytes,
            to_ds: false,
            more_frag: false,
            frag: 0,
        }
    }

    /// True when no ACK is expected (group-addressed).
    pub fn is_broadcast(&self) -> bool {
        self.dst.is_multicast()
    }

    /// Converts to the analysis record given capture context.
    pub fn to_record(
        &self,
        timestamp_us: Micros,
        rate: Rate,
        channel: Channel,
        signal_dbm: i8,
    ) -> FrameRecord {
        FrameRecord {
            timestamp_us,
            kind: self.kind,
            rate,
            channel,
            dst: self.dst,
            src: self.src,
            bssid: self.bssid,
            retry: self.retry,
            seq: self.seq,
            mac_bytes: self.mac_bytes,
            payload_bytes: self.payload_bytes,
            signal_dbm,
            duration_us: self.duration_us,
        }
    }

    /// Materializes full frame bytes for pcap export. Data payloads are
    /// zero-filled (their content never mattered to the study; the sniffers
    /// kept only headers anyway).
    pub fn to_frame(&self, channel: Channel) -> Frame {
        let seq = SeqCtl::new(self.seq.unwrap_or(0), self.frag);
        match self.kind {
            FrameKind::Rts => Frame::Rts(Rts {
                duration: self.duration_us,
                receiver: self.dst,
                transmitter: self.src.unwrap_or(MacAddr::ZERO),
            }),
            FrameKind::Cts => Frame::Cts(Cts {
                duration: self.duration_us,
                receiver: self.dst,
            }),
            FrameKind::Ack => Frame::Ack(Ack {
                duration: self.duration_us,
                receiver: self.dst,
            }),
            FrameKind::Beacon => Frame::Beacon(Beacon {
                duration: 0,
                dest: MacAddr::BROADCAST,
                source: self.src.unwrap_or(MacAddr::ZERO),
                bssid: self.bssid.unwrap_or(MacAddr::ZERO),
                seq,
                timestamp: 0,
                interval_tu: 100,
                capability: 0x0401,
                // Size the SSID so the materialized frame matches mac_bytes:
                // overhead(28) + fixed(12) + ssid_ie(2+n) + rates(6) + ds(3).
                ssid: "x".repeat((self.mac_bytes as usize).saturating_sub(
                    frame::MGMT_OVERHEAD_BYTES + frame::BEACON_FIXED_BODY_BYTES + 11,
                )),
                channel,
            }),
            FrameKind::Data | FrameKind::NullData => {
                let flags = FcFlags {
                    retry: self.retry,
                    to_ds: self.to_ds,
                    from_ds: !self.to_ds,
                    more_frag: self.more_frag,
                    ..FcFlags::default()
                };
                Frame::Data(Data {
                    flags,
                    duration: self.duration_us,
                    addr1: self.dst,
                    addr2: self.src.unwrap_or(MacAddr::ZERO),
                    addr3: self.bssid.unwrap_or(MacAddr::ZERO),
                    seq,
                    payload: vec![0u8; self.payload_bytes as usize],
                    null: self.kind == FrameKind::NullData,
                })
            }
            kind => {
                let flags = FcFlags {
                    retry: self.retry,
                    ..FcFlags::default()
                };
                Frame::Mgmt(wifi_frames::frame::Mgmt {
                    kind,
                    flags,
                    duration: self.duration_us,
                    addr1: self.dst,
                    addr2: self.src.unwrap_or(MacAddr::ZERO),
                    addr3: self.bssid.unwrap_or(MacAddr::ZERO),
                    seq,
                    body: vec![
                        0u8;
                        (self.mac_bytes as usize).saturating_sub(frame::MGMT_OVERHEAD_BYTES)
                    ],
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> MacAddr {
        MacAddr::from_id(i)
    }

    #[test]
    fn data_descriptor_sizes() {
        let f = SimFrame::data(a(1), a(2), a(3), 7, 1472, false, 314, true);
        assert_eq!(f.mac_bytes, 1500);
        assert_eq!(f.payload_bytes, 1472);
        assert!(!f.is_broadcast());
    }

    #[test]
    fn control_descriptor_sizes() {
        assert_eq!(SimFrame::rts(a(1), a(2), 100).mac_bytes, 20);
        assert_eq!(SimFrame::cts(a(1), 50).mac_bytes, 14);
        assert_eq!(SimFrame::ack(a(1)).mac_bytes, 14);
    }

    #[test]
    fn beacon_is_broadcast() {
        let b = SimFrame::beacon(a(5), 3, 29);
        assert!(b.is_broadcast());
        assert_eq!(b.mac_bytes, 57);
    }

    #[test]
    fn record_conversion_carries_fields() {
        let f = SimFrame::data(a(1), a(2), a(3), 42, 800, true, 314, false);
        let ch = Channel::new(6).unwrap();
        let r = f.to_record(5_000_000, Rate::R5_5, ch, -55);
        assert_eq!(r.timestamp_us, 5_000_000);
        assert_eq!(r.kind, FrameKind::Data);
        assert_eq!(r.rate, Rate::R5_5);
        assert_eq!(r.seq, Some(42));
        assert!(r.retry);
        assert_eq!(r.mac_bytes, 828);
        assert_eq!(r.payload_bytes, 800);
        assert_eq!(r.signal_dbm, -55);
    }

    #[test]
    fn materialized_frames_encode_to_declared_size() {
        let ch = Channel::new(1).unwrap();
        let frames = [
            SimFrame::data(a(1), a(2), a(3), 7, 321, false, 0, true),
            SimFrame::rts(a(1), a(2), 9),
            SimFrame::cts(a(2), 5),
            SimFrame::ack(a(1)),
            SimFrame::beacon(a(4), 1, 29),
            SimFrame::mgmt(FrameKind::AssocRequest, a(1), a(4), a(4), 2, 20, false, 0),
        ];
        for sf in frames {
            let full = sf.to_frame(ch);
            let bytes = wifi_frames::wire::encode(&full);
            assert_eq!(bytes.len() as u32, sf.mac_bytes, "{:?}", sf.kind);
            // And they parse back.
            wifi_frames::wire::parse(&bytes).unwrap();
        }
    }

    #[test]
    fn materialized_data_round_trips_ds_bits() {
        let up = SimFrame::data(a(1), a(2), a(3), 7, 10, false, 0, true);
        if let Frame::Data(d) = up.to_frame(Channel::new(1).unwrap()) {
            assert!(d.flags.to_ds && !d.flags.from_ds);
        } else {
            panic!("not a data frame");
        }
        let down = SimFrame::data(a(2), a(1), a(3), 8, 10, false, 0, false);
        if let Frame::Data(d) = down.to_frame(Channel::new(1).unwrap()) {
            assert!(!d.flags.to_ds && d.flags.from_ds);
        } else {
            panic!("not a data frame");
        }
    }
}
