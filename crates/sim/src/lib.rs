//! # wifi-sim
//!
//! A discrete-event simulator of IEEE 802.11b DCF collision domains — the
//! substrate substituting for the live IETF-62 network in the reproduction of
//! *Understanding Congestion in IEEE 802.11b Wireless Networks* (IMC 2005).
//!
//! What is modelled:
//!
//! * **CSMA/CA** — carrier sense with configurable threshold (hence hidden
//!   terminals), DIFS/EIFS defer, slotted backoff with freeze/resume,
//!   exponential contention-window growth, retry limits;
//! * **RTS/CTS** — optional per station (never / always / size threshold),
//!   NAV honoured by overhearers;
//! * **PHY** — log-distance path loss, SINR with interference power
//!   summation, capture effect, per-rate/per-size frame error model,
//!   long-preamble 802.11b air times;
//! * **rate adaptation** — ARF, AARF, fixed, and SNR-threshold schemes;
//! * **infrastructure** — APs with beacons and association, clients with
//!   join/leave schedules and Poisson uplink/downlink traffic;
//! * **vicinity sniffers** — RFMon-style capture with the paper's three loss
//!   causes (out-of-range/hidden terminal, bit error/collision, hardware
//!   saturation) plus full ground truth for validating trace analyses.
//!
//! Simulations are deterministic: configuration + seed ⇒ identical traces.
//!
//! ```
//! use wifi_sim::{ClientConfig, SimConfig, Simulator};
//! use wifi_sim::geometry::Pos;
//! use wifi_sim::rate::RateAdaptation;
//! use wifi_sim::sniffer::SnifferConfig;
//! use wifi_sim::station::RtsPolicy;
//! use wifi_sim::traffic::TrafficProfile;
//! use wifi_frames::phy::Rate;
//!
//! let mut sim = Simulator::new(SimConfig::default());
//! sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
//! sim.add_client(ClientConfig {
//!     pos: Pos::new(5.0, 0.0),
//!     channel_idx: 0,
//!     rts_policy: RtsPolicy::Never,
//!     adaptation: RateAdaptation::Arf(Rate::R11),
//!     traffic: TrafficProfile::symmetric(50.0),
//!     join_at_us: 0,
//!     leave_at_us: None,
//!     power_save_interval_us: None,
//!     frag_threshold: None,
//! });
//! sim.add_sniffer(SnifferConfig::default());
//! sim.run_until(2_000_000); // two simulated seconds
//! assert!(!sim.sniffers()[0].trace.is_empty());
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod config;
pub mod events;
pub mod frame_info;
pub mod geometry;
pub mod medium;
pub mod radio;
pub mod rate;
pub mod rng;
pub mod runner;
pub mod shard;
pub mod sim;
pub mod sniffer;
pub mod spsc;
pub mod station;
pub mod topology;
pub mod traffic;

pub use config::SimConfig;
pub use runner::{run_parallel, CellReport, RunReport};
pub use sim::{ClientConfig, GroundTruth, RemoteNotice, Simulator};
