//! RF-isolation sharding: partitioning a scenario into independent media.
//!
//! A venue-scale deployment (the multi-hall campus the paper's conference
//! would sit in) contains groups of stations that can never interact: their
//! pairwise path loss is below every interaction threshold. Such groups —
//! connected components of the pair-coupling graph restricted to one
//! channel — are *RF-isolation components*, and a simulator whose media are
//! components instead of whole channels produces bit-identical per-station
//! and per-sniffer results while letting components run on separate
//! threads.
//!
//! [`ShardSpec`] records a scenario build (the same adder calls
//! [`Simulator`] exposes), so the one description can be materialized as a
//! single unsharded simulator or as any grouping of component simulators:
//!
//! 1. [`ShardSpec::build_unsharded`] replays the ops into a per-channel
//!    simulator — exactly what calling the adders directly produces.
//! 2. [`ShardSpec::partition`] finds the components and packs them into at
//!    most `max_shards` shards (longest-processing-time by station count);
//!    [`ShardSpec::build_shard`] materializes one shard as a partitioned
//!    [`Simulator`] whose media are that shard's components.
//!
//! ## Why results are identical (the determinism argument)
//!
//! * **Couplings never cross components.** The component edges are "path
//!   RSSI ≥ the effective coupling floor", and the simulator ignores every
//!   pair below the floor: no reception, no interferer registration, no
//!   NAV, no carrier sense (the floor is clamped under the CS and
//!   sensitivity thresholds), no sniffer accounting. A transmission's full
//!   effect set therefore lies inside its component.
//! * **Random streams are per-entity.** Every station draws from a
//!   counter-based stream keyed by its scenario-wide build index, and every
//!   sniffer from one keyed past the station space ([`crate::rng`]). A
//!   station's draw sequence depends only on the events it experiences,
//!   which are the same whether its component shares a simulator with
//!   others or not. Fade realizations are keyed by the same global ids.
//! * **Association picks cannot escape the component.** A joining client
//!   associates to the strongest-path-loss AP on its medium (first maximum
//!   in ascending build order). The planner adds a forced edge from each
//!   client to exactly that AP, so the client's component contains it, and
//!   a subset argmax that contains the global argmax *is* the global
//!   argmax.
//! * **Same-timestamp ordering is preserved within a component.** Shards
//!   add stations in ascending global build order, so the relative event
//!   sequence of any two same-component events matches the unsharded run;
//!   events in different components never affect common state, so their
//!   relative order is immaterial.
//!
//! Dynamic channel management migrates stations between channels at run
//! time, which a partitioned simulator cannot express; `partition` declines
//! (returns `None`) when it is enabled, as it does when some client's
//! channel has no AP anywhere (the client would rescan onto another
//! channel). Callers fall back to the unsharded build.
//!
//! ## Time-window lockstep sharding (dense cells)
//!
//! Component sharding has a hard ceiling: one coupled cell — the paper's
//! 523-user plenary — is one component, so it runs on one core no matter
//! how many are available. [`ShardSpec::partition_lockstep`] breaks that
//! ceiling by splitting *coupled* stations across shards and advancing all
//! shards in lockstep over bounded time windows:
//!
//! * Every shard materializes the **full roster** ([`ShardSpec::build_lockstep_shard`]):
//!   owned stations behave normally, the rest are passive *shells* (identity
//!   only), so node ids, MACs, RNG keys and topology rows agree everywhere.
//! * A window of `W <= min(cs_delay, OVERLAP_GUARD_US)` microseconds is the
//!   safe lookahead: a transmission started on one shard cannot influence
//!   another station — not via carrier sense (one detection delay), not via
//!   retroactive interference (the overlap guard), not via reception or NAV
//!   (a frame airtime) — before the window ends. Shards therefore simulate
//!   a window independently, then exchange [`crate::sim::RemoteNotice`]s at
//!   the boundary and replay each other's transmissions as *ghosts*
//!   ([`Simulator::apply_remote_tx`]) before the next window.
//! * Each client is co-owned with its join-time argmax AP (the BSS
//!   grouping): downlink traffic is enqueued at the AP from the client's
//!   own traffic handler, which only co-ownership keeps shard-local.
//! * The export set is the two-hop relevance closure
//!   ([`crate::topology::SensingTopology::boundary_relevance`]): everything
//!   coupled to an owned station or audible at an owned sniffer, plus the
//!   neighbors of those — the interferer lists of relevant transmissions.
//!
//! The full protocol and its determinism argument live in
//! `docs/DETERMINISM.md`.

use crate::config::SimConfig;
use crate::geometry::Pos;
use crate::medium::OVERLAP_GUARD_US;
use crate::rate::RateAdaptation;
use crate::sim::{ClientConfig, Simulator};
use crate::sniffer::SnifferConfig;
use crate::station::RtsPolicy;
use crate::topology::{NodeSet, SensingTopology};
use wifi_frames::phy::Rate;
use wifi_frames::timing::Micros;

/// Default lockstep window width, µs: the widest window that is safe under
/// the default radio timing (`min(cs_delay, OVERLAP_GUARD_US)`).
pub const DEFAULT_LOCKSTEP_WINDOW_US: Micros = 10;

/// One recorded station-build operation.
#[derive(Clone, Debug)]
enum StationOp {
    Ap {
        pos: Pos,
        channel_idx: usize,
        ssid_len: u32,
        adaptation: RateAdaptation,
        rts_policy: RtsPolicy,
    },
    Client(ClientConfig),
}

impl StationOp {
    fn pos(&self) -> Pos {
        match self {
            StationOp::Ap { pos, .. } => *pos,
            StationOp::Client(cfg) => cfg.pos,
        }
    }

    fn channel_idx(&self) -> usize {
        match self {
            StationOp::Ap { channel_idx, .. } => *channel_idx,
            StationOp::Client(cfg) => cfg.channel_idx,
        }
    }

    fn is_ap(&self) -> bool {
        matches!(self, StationOp::Ap { .. })
    }
}

/// A recorded scenario build: configuration plus the adder calls, in order.
///
/// Station keys (RNG streams, fade links, MAC addresses) are the build
/// indices, so any materialization — unsharded or sharded — reproduces the
/// same per-entity identities.
///
/// ```
/// use wifi_sim::SimConfig;
/// use wifi_sim::geometry::Pos;
/// use wifi_sim::shard::ShardSpec;
///
/// let mut spec = ShardSpec::new(SimConfig::default());
/// spec.add_ap(Pos::new(0.0, 0.0), 0, 6);      // two cells, far beyond
/// spec.add_ap(Pos::new(10_000.0, 0.0), 0, 6); // the coupling range
///
/// let mut whole = spec.build_unsharded();
/// whole.run_until(1_000_000);
///
/// // The same build, partitioned: two RF-isolation components whose
/// // summed output reproduces the unsharded run bit for bit.
/// let plan = spec.partition(8).unwrap();
/// assert_eq!(plan.shards.len(), 2);
/// let events: u64 = plan
///     .shards
///     .iter()
///     .map(|shard| {
///         let mut sim = spec.build_shard(shard);
///         sim.run_until(1_000_000);
///         sim.events_processed()
///     })
///     .sum();
/// assert_eq!(events, whole.events_processed());
/// ```
pub struct ShardSpec {
    config: SimConfig,
    stations: Vec<StationOp>,
    sniffers: Vec<SnifferConfig>,
}

/// One shard of a partitioned scenario: a group of RF-isolation
/// components, each becoming one medium of one partitioned [`Simulator`].
#[derive(Clone, Debug)]
pub struct Shard {
    /// The channel index each medium (component) of this shard lives on.
    pub medium_channel: Vec<usize>,
    /// `(global station index, medium within shard)`, ascending by global
    /// index.
    stations: Vec<(usize, usize)>,
    /// `(global sniffer index, medium within shard)`.
    sniffers: Vec<(usize, usize)>,
}

impl Shard {
    /// Stations materialized into this shard (global indices, ascending).
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Stations materialized into this shard (global indices, ascending).
    /// The position in this iteration is the station's *local* node id in
    /// the shard's simulator — mobility drivers use this to route a global
    /// move to `(shard, local id)`.
    pub fn station_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.stations.iter().map(|&(gi, _)| gi)
    }

    /// Sniffers materialized into this shard, as
    /// `(global sniffer index, medium within shard)`.
    pub fn sniffer_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.sniffers.iter().map(|&(gi, _)| gi)
    }

    /// `(global station index, medium within shard)` pairs — mobility
    /// drivers check cut containment at *medium* granularity, since a
    /// shard's media are separate simulated worlds.
    pub fn station_media(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.stations.iter().copied()
    }

    /// `(global sniffer index, medium within shard)` pairs.
    pub fn sniffer_media(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.sniffers.iter().copied()
    }
}

/// The canonical cut signature of a scenario's coupling graph at one set of
/// positions: which entities interact, and which AP each client would join.
/// Two signatures compare equal exactly when the component/BSS cut is the
/// same, so a mobility driver detects *drift* — a move that changed the cut
/// — by recomputing the signature from the incrementally maintained
/// topology at an epoch boundary and comparing with the one its
/// [`ShardPlan`] was built under ([`ShardPlan::drifted`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CouplingSignature {
    /// Component label per entity — stations `0..n`, then sniffers at
    /// `n..n + s`. The label is the minimum entity index in the component
    /// (the union-find's lower-root-wins invariant), so labels are
    /// canonical regardless of edge order.
    pub labels: Vec<usize>,
    /// Each client's join-time argmax AP as `(client, ap)`, ascending by
    /// client. Tracked separately from `labels` because an argmax flip
    /// between two APs of the *same* component changes no label but does
    /// change the BSS cut.
    pub client_ap: Vec<(usize, usize)>,
}

impl CouplingSignature {
    /// A spanning set of co-shard constraint edges reproducing this
    /// signature's grouping: `(entity, label)` for every entity plus each
    /// client's argmax AP edge. A mobility driver accumulates these across
    /// drift events and re-partitions with
    /// [`ShardSpec::partition_with`] so the new plan is valid for every
    /// position history observed so far.
    pub fn constraint_edges(&self) -> Vec<(usize, usize)> {
        let mut edges: Vec<(usize, usize)> = self
            .labels
            .iter()
            .enumerate()
            .filter(|&(e, &l)| l != e)
            .map(|(e, &l)| (e, l))
            .collect();
        edges.extend(self.client_ap.iter().copied());
        edges
    }
}

/// The result of partitioning: shards covering every station and sniffer
/// exactly once.
pub struct ShardPlan {
    /// The shards, largest (by station count) first.
    pub shards: Vec<Shard>,
    /// RF-isolation components found before grouping (shards merge
    /// components; this is the parallelism ceiling).
    pub components: usize,
    /// The coupling/BSS cut this plan was computed under (constraint edges
    /// excluded — always the *natural* signature of the positions), for
    /// drift detection as stations move.
    pub signature: CouplingSignature,
}

impl ShardPlan {
    /// Has the coupling graph drifted away from the cut this plan was
    /// built under? `topo` is the mobility driver's incrementally
    /// maintained topology at the current positions; the spec supplies
    /// channels and roles. Cheap relative to a partition: the signature is
    /// recomputed from cached bitset rows and RSSI reads, no path-loss
    /// math. Callers key the check off
    /// [`SensingTopology::epoch`] — an unchanged epoch cannot
    /// have drifted.
    pub fn drifted(&self, spec: &ShardSpec, topo: &SensingTopology) -> bool {
        spec.coupling_signature(topo)
            .is_none_or(|sig| sig != self.signature)
    }
}

/// One lockstep shard: a full-roster simulator that *owns* a subset of the
/// stations (the rest are shells) and a subset of the sniffers, advancing
/// in bounded windows against its sibling shards. Built by
/// [`ShardSpec::partition_lockstep`], materialized by
/// [`ShardSpec::build_lockstep_shard`].
#[derive(Clone, Debug)]
pub struct LockstepShard {
    /// Global indices of owned stations, ascending.
    owned: Vec<usize>,
    /// `owned_mask[gi]`: does this shard own global station `gi`?
    owned_mask: Vec<bool>,
    /// `export_mask[gi]`: is owned station `gi` inside some sibling's
    /// relevance closure (its transmissions crossing the cut)?
    export_mask: Vec<bool>,
    /// Global indices of owned sniffers, ascending.
    sniffers: Vec<usize>,
}

impl LockstepShard {
    /// Stations owned by this shard.
    pub fn station_count(&self) -> usize {
        self.owned.len()
    }

    /// Does this shard own global station `gi`?
    pub fn owns(&self, gi: usize) -> bool {
        self.owned_mask.get(gi).copied().unwrap_or(false)
    }

    /// Owned stations (global indices, ascending).
    pub fn owned_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.owned.iter().copied()
    }

    /// Owned sniffers (global indices, ascending).
    pub fn sniffer_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.sniffers.iter().copied()
    }

    /// How many owned stations are exported across the cut.
    pub fn exported_count(&self) -> usize {
        self.export_mask.iter().filter(|&&e| e).count()
    }
}

/// The result of lockstep partitioning: every station owned by exactly one
/// shard, every sniffer owned by exactly one shard, and a validated window.
pub struct LockstepPlan {
    /// The shards, largest (by owned-station count) first.
    pub shards: Vec<LockstepShard>,
    /// The validated lockstep window width, µs.
    pub window_us: Micros,
}

/// Union-find over scenario entities (stations, then sniffers).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: lower root wins, so component identity is
            // independent of edge processing order.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

impl ShardSpec {
    /// A new, empty scenario description.
    pub fn new(config: SimConfig) -> ShardSpec {
        ShardSpec {
            config,
            stations: Vec::new(),
            sniffers: Vec::new(),
        }
    }

    /// The configuration this scenario was described against.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Mutable configuration access (e.g. to switch off ground-truth
    /// recording for perf runs). Changing the channel list after recording
    /// stations is on the caller.
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.config
    }

    /// Records an access point (defaults mirror [`Simulator::add_ap`]).
    /// Returns its global station index.
    pub fn add_ap(&mut self, pos: Pos, channel_idx: usize, ssid_len: u32) -> usize {
        self.add_ap_with(
            pos,
            channel_idx,
            ssid_len,
            RateAdaptation::Arf(Rate::R11),
            RtsPolicy::Never,
        )
    }

    /// Records an access point with explicit adaptation and RTS policy.
    pub fn add_ap_with(
        &mut self,
        pos: Pos,
        channel_idx: usize,
        ssid_len: u32,
        adaptation: RateAdaptation,
        rts_policy: RtsPolicy,
    ) -> usize {
        assert!(
            channel_idx < self.config.channels.len(),
            "bad channel index"
        );
        self.stations.push(StationOp::Ap {
            pos,
            channel_idx,
            ssid_len,
            adaptation,
            rts_policy,
        });
        self.stations.len() - 1
    }

    /// Records a client. Returns its global station index.
    pub fn add_client(&mut self, cfg: ClientConfig) -> usize {
        assert!(
            cfg.channel_idx < self.config.channels.len(),
            "bad channel index"
        );
        self.stations.push(StationOp::Client(cfg));
        self.stations.len() - 1
    }

    /// Records a sniffer. Returns its global sniffer index.
    pub fn add_sniffer(&mut self, cfg: SnifferConfig) -> usize {
        assert!(
            cfg.channel_idx < self.config.channels.len(),
            "bad channel index"
        );
        self.sniffers.push(cfg);
        self.sniffers.len() - 1
    }

    /// Stations recorded so far.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Sniffers recorded so far.
    pub fn sniffer_count(&self) -> usize {
        self.sniffers.len()
    }

    /// Materializes the whole scenario as one per-channel simulator —
    /// identical to having called the [`Simulator`] adders directly.
    pub fn build_unsharded(&self) -> Simulator {
        let mut sim = Simulator::new(self.config.clone());
        sim.reserve_stations(self.stations.len(), self.sniffers.len());
        for op in &self.stations {
            match op {
                StationOp::Ap {
                    pos,
                    channel_idx,
                    ssid_len,
                    adaptation,
                    rts_policy,
                } => {
                    sim.add_ap_with(*pos, *channel_idx, *ssid_len, *adaptation, *rts_policy);
                }
                StationOp::Client(cfg) => {
                    sim.add_client(cfg.clone());
                }
            }
        }
        for cfg in &self.sniffers {
            sim.add_sniffer(*cfg);
        }
        sim
    }

    /// Computes the natural coupling/BSS cut ([`CouplingSignature`]) of the
    /// recorded scenario at the *topology's current positions* — which may
    /// differ from the recorded build positions once a mobility driver has
    /// applied moves. Returns `None` when the topology does not cover the
    /// scenario, or when some client's channel has no AP (the scenario is
    /// unshardable, so there is no cut to compare). Reads only the cached
    /// matrix and bitsets; no path-loss math.
    pub fn coupling_signature(&self, topo: &SensingTopology) -> Option<CouplingSignature> {
        if topo.station_count() != self.stations.len()
            || topo.sniffer_count() != self.sniffers.len()
        {
            return None;
        }
        let floor = self.config.radio.effective_coupling_floor_dbm();
        self.signature_impl(
            |a, b| topo.coupled(a, b),
            |ap, client| topo.rssi(ap, client),
            |si, st| topo.sniffer_rssi(si, st) >= floor,
        )
        .map(|(_, sig)| sig)
    }

    /// The shared coupling analysis behind [`ShardSpec::partition`],
    /// [`ShardSpec::partition_with`] and
    /// [`ShardSpec::coupling_signature`], parameterized over the coupling
    /// oracles so one caller can use direct path-loss math and another the
    /// incrementally maintained cache — both produce identical unions
    /// because the cached values *are* the same pure function's outputs.
    /// Returns the entity union-find plus the canonical signature, or
    /// `None` for an orphan client (whose join would rescan across
    /// channels, which partitioned media cannot express).
    fn signature_impl(
        &self,
        coupled: impl Fn(usize, usize) -> bool,
        ap_rssi: impl Fn(usize, usize) -> f64,
        sniffer_hears: impl Fn(usize, usize) -> bool,
    ) -> Option<(UnionFind, CouplingSignature)> {
        let n = self.stations.len();
        // Every client must have a co-channel AP somewhere, or the join
        // logic rescans onto another channel (a migration partitioned
        // media cannot express).
        for op in &self.stations {
            if op.is_ap() {
                continue;
            }
            let ch = op.channel_idx();
            if !self
                .stations
                .iter()
                .any(|o| o.is_ap() && o.channel_idx() == ch)
            {
                return None;
            }
        }
        let mut uf = UnionFind::new(n + self.sniffers.len());
        // Coupled same-channel pairs interact; everything below the floor
        // is ignored by the simulator entirely.
        for a in 0..n {
            for b in (a + 1)..n {
                if self.stations[a].channel_idx() == self.stations[b].channel_idx() && coupled(a, b)
                {
                    uf.union(a, b);
                }
            }
        }
        // Forced edge: each client joins the strongest co-channel AP (first
        // maximum in build order — exactly the join-time argmax), wherever
        // it is; keep that AP in the client's component.
        let mut client_ap = Vec::new();
        for c in 0..n {
            if self.stations[c].is_ap() {
                continue;
            }
            let ch = self.stations[c].channel_idx();
            let mut best: Option<(usize, f64)> = None;
            for (i, op) in self.stations.iter().enumerate() {
                if op.is_ap() && op.channel_idx() == ch {
                    let rssi = ap_rssi(i, c);
                    if best.is_none_or(|(_, b)| rssi > b) {
                        best = Some((i, rssi));
                    }
                }
            }
            let (ap, _) = best.expect("checked above: every client channel has an AP");
            client_ap.push((c, ap));
            uf.union(c, ap);
        }
        // A sniffer hears (or counts a miss for) every co-channel station
        // whose path RSSI at the sniffer clears the floor; all of them must
        // share the sniffer's medium.
        for (si, cfg) in self.sniffers.iter().enumerate() {
            for (i, op) in self.stations.iter().enumerate() {
                if op.channel_idx() == cfg.channel_idx && sniffer_hears(si, i) {
                    uf.union(n + si, i);
                }
            }
        }
        // Canonical labels: the union-find root is the component's minimum
        // member index (lower-root-wins), independent of edge order.
        let labels = (0..n + self.sniffers.len()).map(|e| uf.find(e)).collect();
        Some((uf, CouplingSignature { labels, client_ap }))
    }

    /// Partitions the scenario into at most `max_shards` shards of
    /// RF-isolation components, or `None` when the scenario cannot be
    /// sharded (dynamic channel management, or a client whose channel has
    /// no AP and would rescan across channels).
    pub fn partition(&self, max_shards: usize) -> Option<ShardPlan> {
        let radio = &self.config.radio;
        let floor = radio.effective_coupling_floor_dbm();
        // Direct path-loss math: a one-shot partition has no maintained
        // topology to read, and materializing a throwaway O(N²) matrix
        // just for this pass would be a multi-hundred-MB transient at
        // venue scale.
        self.partition_impl(
            max_shards,
            &[],
            |a, b| radio.rssi_dbm(self.stations[a].pos(), self.stations[b].pos()) >= floor,
            |ap, client| radio.rssi_dbm(self.stations[ap].pos(), self.stations[client].pos()),
            |si, st| radio.rssi_dbm(self.stations[st].pos(), self.sniffers[si].pos) >= floor,
        )
    }

    /// [`ShardSpec::partition`] against an incrementally maintained
    /// topology (current positions, not the recorded build positions),
    /// with extra `keep_together` co-shard constraint edges — entity
    /// indices, stations `0..n` then sniffers `n..n + s`. A mobility
    /// driver that detects drift ([`ShardPlan::drifted`]) re-partitions
    /// here with the constraint edges accumulated from every signature
    /// seen so far ([`CouplingSignature::constraint_edges`]), so the new
    /// plan is valid for the whole observed position history. The plan's
    /// stored signature excludes the constraints (it is always the natural
    /// cut of the positions, else the drift compare could never
    /// converge). Returns `None` when the topology does not cover the
    /// scenario or the scenario is unshardable.
    pub fn partition_with(
        &self,
        max_shards: usize,
        topo: &SensingTopology,
        keep_together: &[(usize, usize)],
    ) -> Option<ShardPlan> {
        if topo.station_count() != self.stations.len()
            || topo.sniffer_count() != self.sniffers.len()
        {
            return None;
        }
        let floor = self.config.radio.effective_coupling_floor_dbm();
        self.partition_impl(
            max_shards,
            keep_together,
            |a, b| topo.coupled(a, b),
            |ap, client| topo.rssi(ap, client),
            |si, st| topo.sniffer_rssi(si, st) >= floor,
        )
    }

    fn partition_impl(
        &self,
        max_shards: usize,
        keep_together: &[(usize, usize)],
        coupled: impl Fn(usize, usize) -> bool,
        ap_rssi: impl Fn(usize, usize) -> f64,
        sniffer_hears: impl Fn(usize, usize) -> bool,
    ) -> Option<ShardPlan> {
        if self.config.channel_mgmt.is_some() || max_shards == 0 {
            return None;
        }
        let n = self.stations.len();
        let (mut uf, signature) = self.signature_impl(coupled, ap_rssi, sniffer_hears)?;
        // Constraint edges merge after the natural signature is taken, so
        // the stored signature always describes the positions alone.
        for &(a, b) in keep_together {
            uf.union(a, b);
        }
        // Collect components, keyed by (first-seen order of) root.
        let mut comp_of_root: Vec<(usize, usize)> = Vec::new(); // (root, comp id)
        let mut comp_id = |uf: &mut UnionFind, entity: usize, comps: &mut Vec<Component>| {
            let root = uf.find(entity);
            if let Some(&(_, id)) = comp_of_root.iter().find(|&&(r, _)| r == root) {
                return id;
            }
            let id = comps.len();
            comp_of_root.push((root, id));
            comps.push(Component::default());
            id
        };
        #[derive(Default)]
        struct Component {
            channel: Option<usize>,
            stations: Vec<usize>,
            sniffers: Vec<usize>,
        }
        let mut comps: Vec<Component> = Vec::new();
        for i in 0..n {
            let id = comp_id(&mut uf, i, &mut comps);
            comps[id].channel = Some(self.stations[i].channel_idx());
            comps[id].stations.push(i);
        }
        for (si, cfg) in self.sniffers.iter().enumerate() {
            let id = comp_id(&mut uf, n + si, &mut comps);
            // A sniffer coupled to nothing forms its own (silent) medium.
            comps[id].channel.get_or_insert(cfg.channel_idx);
            comps[id].sniffers.push(si);
        }
        let components = comps.len();
        // Longest-processing-time packing by station count into at most
        // `max_shards` bins (deterministic: stable sort, lowest bin wins
        // ties).
        let mut order: Vec<usize> = (0..comps.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(comps[i].stations.len()));
        let bins = max_shards.min(comps.len()).max(1);
        let mut loads = vec![0usize; bins];
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); bins];
        for &ci in &order {
            let bin = (0..bins).min_by_key(|&b| loads[b]).unwrap();
            loads[bin] += comps[ci].stations.len();
            assignment[bin].push(ci);
        }
        let mut shards = Vec::new();
        for mut group in assignment {
            if group.is_empty() {
                continue;
            }
            // Media in ascending first-station order keeps shard layout
            // independent of the LPT visit order.
            group.sort_by_key(|&ci| comps[ci].stations.first().copied().unwrap_or(usize::MAX));
            let mut shard = Shard {
                medium_channel: Vec::new(),
                stations: Vec::new(),
                sniffers: Vec::new(),
            };
            for &ci in &group {
                let medium = shard.medium_channel.len();
                shard
                    .medium_channel
                    .push(comps[ci].channel.expect("component has a channel"));
                shard
                    .stations
                    .extend(comps[ci].stations.iter().map(|&gi| (gi, medium)));
                shard
                    .sniffers
                    .extend(comps[ci].sniffers.iter().map(|&si| (si, medium)));
            }
            // Ascending global order (components are internally ascending;
            // merge across them) so same-timestamp sequence order matches
            // the unsharded build.
            shard.stations.sort_by_key(|&(gi, _)| gi);
            shard.sniffers.sort_by_key(|&(si, _)| si);
            shards.push(shard);
        }
        shards.sort_by_key(|s| std::cmp::Reverse(s.stations.len()));
        Some(ShardPlan {
            shards,
            components,
            signature,
        })
    }

    /// Materializes one shard as a partitioned simulator whose media are
    /// the shard's components.
    pub fn build_shard(&self, shard: &Shard) -> Simulator {
        let mut sim = Simulator::new_partitioned(self.config.clone(), shard.medium_channel.clone());
        sim.reserve_stations(shard.stations.len(), shard.sniffers.len());
        for &(gi, medium) in &shard.stations {
            match &self.stations[gi] {
                StationOp::Ap {
                    pos,
                    channel_idx,
                    ssid_len,
                    adaptation,
                    rts_policy,
                } => {
                    sim.add_ap_keyed(
                        *pos,
                        *channel_idx,
                        *ssid_len,
                        *adaptation,
                        *rts_policy,
                        gi as u64,
                        medium,
                    );
                }
                StationOp::Client(cfg) => {
                    sim.add_client_keyed(cfg.clone(), gi as u64, medium);
                }
            }
        }
        for &(si, medium) in &shard.sniffers {
            sim.add_sniffer_keyed(self.sniffers[si], si as u64, medium);
        }
        sim
    }

    /// Partitions the scenario for time-window lockstep execution (see the
    /// module docs), or `None` when it cannot or should not engage:
    /// dynamic channel management, an orphan client (cross-channel rescan),
    /// `max_shards < 2`, an unsafe `window_us` (zero, or wider than
    /// `min(cs_delay, OVERLAP_GUARD_US)`), or a scenario whose BSS groups
    /// cannot fill more than one shard. Callers fall back to component
    /// sharding or the unsharded build.
    pub fn partition_lockstep(&self, max_shards: usize, window_us: Micros) -> Option<LockstepPlan> {
        let n = self.stations.len();
        if self.config.channel_mgmt.is_some() || max_shards < 2 || n == 0 {
            return None;
        }
        // The window must not outlive either influence-latency bound: a
        // transmission started in the first microsecond of a window must
        // not owe carrier sense (one cs_delay later) or retroactive
        // interferer registration (the overlap guard) to a sibling shard
        // before the boundary exchange can deliver it.
        if window_us == 0 || window_us > self.config.cs_delay_us.min(OVERLAP_GUARD_US) {
            return None;
        }
        let radio = &self.config.radio;
        let floor = radio.effective_coupling_floor_dbm();
        // Orphan clients rescan onto other channels, toward APs a sibling
        // shard may own; decline exactly as component sharding does.
        for op in &self.stations {
            if !op.is_ap()
                && !self
                    .stations
                    .iter()
                    .any(|o| o.is_ap() && o.channel_idx() == op.channel_idx())
            {
                return None;
            }
        }
        // BSS grouping: co-own each client with its join-time argmax AP
        // (strongest co-channel path, first maximum in build order).
        // Downlink MSDUs are enqueued at the AP from the client's own
        // traffic handler; only co-ownership keeps that enqueue
        // shard-local.
        let mut uf = UnionFind::new(n);
        for c in 0..n {
            if self.stations[c].is_ap() {
                continue;
            }
            let ch = self.stations[c].channel_idx();
            let mut best: Option<(usize, f64)> = None;
            for (i, op) in self.stations.iter().enumerate() {
                if op.is_ap() && op.channel_idx() == ch {
                    let rssi = radio.rssi_dbm(op.pos(), self.stations[c].pos());
                    if best.is_none_or(|(_, b)| rssi > b) {
                        best = Some((i, rssi));
                    }
                }
            }
            let (ap, _) = best.expect("checked above: every client channel has an AP");
            uf.union(c, ap);
        }
        // Collect BSS groups in first-seen root order.
        let mut root_ids: Vec<(usize, usize)> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let root = uf.find(i);
            let gid = match root_ids.iter().find(|&&(r, _)| r == root) {
                Some(&(_, g)) => g,
                None => {
                    root_ids.push((root, groups.len()));
                    groups.push(Vec::new());
                    groups.len() - 1
                }
            };
            groups[gid].push(i);
        }
        if groups.len() < 2 {
            return None; // one BSS: nothing to split
        }
        // Longest-processing-time packing by station count (deterministic:
        // stable sort, lowest bin wins ties), then ascending owned lists.
        let bins = max_shards.min(groups.len());
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&g| std::cmp::Reverse(groups[g].len()));
        let mut loads = vec![0usize; bins];
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); bins];
        for &g in &order {
            let bin = (0..bins).min_by_key(|&b| loads[b]).unwrap();
            loads[bin] += groups[g].len();
            assignment[bin].push(g);
        }
        let mut owned_lists: Vec<Vec<usize>> = assignment
            .into_iter()
            .filter(|grp| !grp.is_empty())
            .map(|grp| {
                let mut v: Vec<usize> = grp
                    .iter()
                    .flat_map(|&g| groups[g].iter().copied())
                    .collect();
                v.sort_unstable();
                v
            })
            .collect();
        if owned_lists.len() < 2 {
            return None;
        }
        owned_lists.sort_by_key(|v| (std::cmp::Reverse(v.len()), v.first().copied()));
        let k = owned_lists.len();
        // Sniffers: deterministic round-robin by global index. Each sniffer
        // is wholly owned by one shard; the relevance closure below makes
        // every transmission it can hear reach that shard as a ghost.
        let mut shard_sniffers: Vec<Vec<usize>> = vec![Vec::new(); k];
        for si in 0..self.sniffers.len() {
            shard_sniffers[si % k].push(si);
        }
        // Per-shard relevance closures over a throwaway full topology:
        // R_B = owned ∪ coupled-or-audible (S₁) ∪ neighbors(S₁).
        let station_pos: Vec<Pos> = self.stations.iter().map(|o| o.pos()).collect();
        let sniffer_pos: Vec<Pos> = self.sniffers.iter().map(|c| c.pos).collect();
        let mut topo = SensingTopology::default();
        topo.rebuild(&station_pos, &sniffer_pos, radio);
        let mut relevance: Vec<NodeSet> = Vec::with_capacity(k);
        for b in 0..k {
            let mut owned = NodeSet::new();
            for &gi in &owned_lists[b] {
                owned.insert(gi);
            }
            let mut audible = NodeSet::new();
            for &si in &shard_sniffers[b] {
                for gi in 0..n {
                    if topo.sniffer_rssi(si, gi) >= floor {
                        audible.insert(gi);
                    }
                }
            }
            let mut rel = NodeSet::new();
            topo.boundary_relevance(&owned, &audible, &mut rel);
            relevance.push(rel);
        }
        let shards = owned_lists
            .into_iter()
            .zip(shard_sniffers)
            .enumerate()
            .map(|(a, (owned, sniffers))| {
                let mut owned_mask = vec![false; n];
                let mut export_mask = vec![false; n];
                for &gi in &owned {
                    owned_mask[gi] = true;
                    export_mask[gi] = (0..k).any(|b| b != a && relevance[b].contains(gi));
                }
                LockstepShard {
                    owned,
                    owned_mask,
                    export_mask,
                    sniffers,
                }
            })
            .collect();
        Some(LockstepPlan { shards, window_us })
    }

    /// Materializes one lockstep shard: a full-roster per-channel simulator
    /// in which `shard`'s stations are owned, every other station is a
    /// passive shell, only `shard`'s sniffers exist, and the export mask is
    /// installed. Node ids equal global build indices on every shard.
    pub fn build_lockstep_shard(&self, shard: &LockstepShard) -> Simulator {
        let mut sim = Simulator::new(self.config.clone());
        sim.reserve_stations(self.stations.len(), shard.sniffers.len());
        for (gi, op) in self.stations.iter().enumerate() {
            sim.set_shell_mode(!shard.owns(gi));
            match op {
                StationOp::Ap {
                    pos,
                    channel_idx,
                    ssid_len,
                    adaptation,
                    rts_policy,
                } => {
                    sim.add_ap_keyed(
                        *pos,
                        *channel_idx,
                        *ssid_len,
                        *adaptation,
                        *rts_policy,
                        gi as u64,
                        *channel_idx,
                    );
                }
                StationOp::Client(cfg) => {
                    sim.add_client_keyed(cfg.clone(), gi as u64, cfg.channel_idx);
                }
            }
        }
        sim.set_shell_mode(false);
        for &si in &shard.sniffers {
            let cfg = self.sniffers[si];
            sim.add_sniffer_keyed(cfg, si as u64, cfg.channel_idx);
        }
        sim.set_export_mask(shard.export_mask.clone());
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::RadioConfig;
    use crate::sniffer::SnifferConfig;
    use crate::traffic::TrafficProfile;

    fn config(channels: Vec<u8>) -> SimConfig {
        SimConfig {
            channels: channels
                .into_iter()
                .map(|n| wifi_frames::phy::Channel::new(n).unwrap())
                .collect(),
            ..SimConfig::default()
        }
    }

    fn client(pos: Pos, channel_idx: usize) -> ClientConfig {
        ClientConfig {
            pos,
            channel_idx,
            rts_policy: RtsPolicy::Never,
            adaptation: RateAdaptation::Arf(Rate::R11),
            traffic: TrafficProfile::silent(),
            join_at_us: 0,
            leave_at_us: None,
            power_save_interval_us: None,
            frag_threshold: None,
        }
    }

    /// Two halls far beyond the coupling floor split into two components;
    /// one hall stays whole.
    #[test]
    fn partitions_far_halls() {
        let mut spec = ShardSpec::new(config(vec![1]));
        spec.add_ap(Pos::new(0.0, 0.0), 0, 4);
        spec.add_client(client(Pos::new(5.0, 0.0), 0));
        spec.add_ap(Pos::new(10_000.0, 0.0), 0, 4);
        spec.add_client(client(Pos::new(10_005.0, 0.0), 0));
        let plan = spec.partition(8).expect("shardable");
        assert_eq!(plan.components, 2);
        assert_eq!(plan.shards.len(), 2);
        let mut stations: Vec<Vec<usize>> = plan
            .shards
            .iter()
            .map(|s| s.stations.iter().map(|&(gi, _)| gi).collect())
            .collect();
        stations.sort();
        assert_eq!(stations, vec![vec![0, 1], vec![2, 3]]);
    }

    /// Stations within range form one component regardless of shard cap.
    #[test]
    fn near_stations_stay_together() {
        let mut spec = ShardSpec::new(config(vec![1]));
        spec.add_ap(Pos::new(0.0, 0.0), 0, 4);
        for i in 0..5 {
            spec.add_client(client(Pos::new(3.0 * i as f64, 4.0), 0));
        }
        let plan = spec.partition(8).expect("shardable");
        assert_eq!(plan.components, 1);
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.shards[0].station_count(), 6);
    }

    /// Different channels are independent even at the same position.
    #[test]
    fn channels_split_components() {
        let mut spec = ShardSpec::new(config(vec![1, 6]));
        spec.add_ap(Pos::new(0.0, 0.0), 0, 4);
        spec.add_client(client(Pos::new(1.0, 0.0), 0));
        spec.add_ap(Pos::new(0.0, 1.0), 1, 4);
        spec.add_client(client(Pos::new(1.0, 1.0), 1));
        let plan = spec.partition(8).expect("shardable");
        assert_eq!(plan.components, 2);
    }

    /// A client with no co-channel AP forces the unsharded fallback.
    #[test]
    fn orphan_client_declines() {
        let mut spec = ShardSpec::new(config(vec![1, 6]));
        spec.add_ap(Pos::new(0.0, 0.0), 0, 4);
        spec.add_client(client(Pos::new(1.0, 0.0), 1));
        assert!(spec.partition(8).is_none());
    }

    /// A sniffer between two otherwise-separate groups merges them.
    #[test]
    fn sniffer_bridges_components() {
        // Pick a separation where the groups are mutually below the floor
        // but a midpoint sniffer couples to both sides.
        let radio = RadioConfig::default();
        let floor = radio.effective_coupling_floor_dbm();
        let mut d = 10.0;
        while radio.rssi_dbm(Pos::new(0.0, 0.0), Pos::new(d, 0.0)) >= floor {
            d += 10.0;
        }
        assert!(
            radio.rssi_dbm(Pos::new(0.0, 0.0), Pos::new(d / 2.0, 0.0)) >= floor,
            "midpoint must stay coupled for this test to be meaningful"
        );
        let mut spec = ShardSpec::new(config(vec![1]));
        spec.add_ap(Pos::new(0.0, 0.0), 0, 4);
        spec.add_ap(Pos::new(d, 0.0), 0, 4);
        let plan = spec.partition(8).expect("shardable");
        assert_eq!(plan.components, 2, "groups start separate");
        spec.add_sniffer(SnifferConfig {
            pos: Pos::new(d / 2.0, 0.0),
            channel_idx: 0,
            ..SnifferConfig::default()
        });
        let plan = spec.partition(8).expect("shardable");
        assert_eq!(plan.components, 1, "sniffer couples to both sides");
    }

    /// LPT grouping respects the shard cap and covers every station once.
    #[test]
    fn grouping_covers_all_once() {
        let mut spec = ShardSpec::new(config(vec![1]));
        for h in 0..5 {
            let x = h as f64 * 10_000.0;
            spec.add_ap(Pos::new(x, 0.0), 0, 4);
            for i in 0..=h {
                spec.add_client(client(Pos::new(x + 2.0 * i as f64, 3.0), 0));
            }
        }
        let plan = spec.partition(2).expect("shardable");
        assert_eq!(plan.components, 5);
        assert_eq!(plan.shards.len(), 2);
        let mut seen: Vec<usize> = plan
            .shards
            .iter()
            .flat_map(|s| s.stations.iter().map(|&(gi, _)| gi))
            .collect();
        seen.sort();
        assert_eq!(seen, (0..spec.station_count()).collect::<Vec<_>>());
    }

    /// Channel management disables sharding.
    #[test]
    fn channel_mgmt_declines() {
        let mut cfg = config(vec![1, 6]);
        cfg.channel_mgmt = Some(crate::config::ChannelMgmt::default());
        let mut spec = ShardSpec::new(cfg);
        spec.add_ap(Pos::new(0.0, 0.0), 0, 4);
        assert!(spec.partition(8).is_none());
    }

    /// A dense two-BSS cell: one RF-isolation component (the ceiling of
    /// component sharding), but lockstep splits it along BSS lines, keeping
    /// each client with its join-time argmax AP.
    #[test]
    fn lockstep_splits_one_component() {
        let mut spec = ShardSpec::new(config(vec![1]));
        let ap0 = spec.add_ap(Pos::new(0.0, 0.0), 0, 4);
        let ap1 = spec.add_ap(Pos::new(40.0, 0.0), 0, 4);
        for i in 0..3 {
            spec.add_client(client(Pos::new(2.0 * i as f64, 1.0), 0));
            spec.add_client(client(Pos::new(40.0 + 2.0 * i as f64, 1.0), 0));
        }
        let comp = spec.partition(8).expect("shardable");
        assert_eq!(comp.components, 1, "everything is coupled: one component");
        let plan = spec
            .partition_lockstep(4, DEFAULT_LOCKSTEP_WINDOW_US)
            .expect("two BSS groups can lockstep");
        assert_eq!(plan.shards.len(), 2);
        assert_eq!(plan.window_us, DEFAULT_LOCKSTEP_WINDOW_US);
        // Coverage: every station owned exactly once.
        let mut seen: Vec<usize> = plan.shards.iter().flat_map(|s| s.owned_indices()).collect();
        seen.sort();
        assert_eq!(seen, (0..spec.station_count()).collect::<Vec<_>>());
        // BSS co-ownership: each client shares a shard with its argmax AP.
        let owner_of = |gi: usize| plan.shards.iter().position(|s| s.owns(gi)).unwrap();
        for (c, ap) in [
            (2usize, ap0),
            (3, ap1),
            (4, ap0),
            (5, ap1),
            (6, ap0),
            (7, ap1),
        ] {
            assert_eq!(owner_of(c), owner_of(ap), "client {c} rides with AP {ap}");
        }
        // Fully coupled cell: every owned station sits in the sibling's
        // relevance closure, so everything is exported.
        for s in &plan.shards {
            assert_eq!(s.exported_count(), s.station_count());
        }
    }

    /// Lockstep declines when the window is unsafe, when there is nothing
    /// to split, and under dynamic channel management.
    #[test]
    fn lockstep_declines() {
        let mut spec = ShardSpec::new(config(vec![1]));
        spec.add_ap(Pos::new(0.0, 0.0), 0, 4);
        spec.add_ap(Pos::new(40.0, 0.0), 0, 4);
        spec.add_client(client(Pos::new(1.0, 1.0), 0));
        spec.add_client(client(Pos::new(41.0, 1.0), 0));
        assert!(spec.partition_lockstep(4, 0).is_none(), "zero window");
        let too_wide = spec.config().cs_delay_us.min(OVERLAP_GUARD_US) + 1;
        assert!(
            spec.partition_lockstep(4, too_wide).is_none(),
            "window wider than the influence-latency bound"
        );
        assert!(spec.partition_lockstep(1, 10).is_none(), "one shard max");
        // One BSS: both clients argmax onto the same AP.
        let mut one = ShardSpec::new(config(vec![1]));
        one.add_ap(Pos::new(0.0, 0.0), 0, 4);
        one.add_client(client(Pos::new(1.0, 0.0), 0));
        one.add_client(client(Pos::new(2.0, 0.0), 0));
        assert!(one.partition_lockstep(4, 10).is_none(), "single BSS");
        let mut cfg = config(vec![1]);
        cfg.channel_mgmt = Some(crate::config::ChannelMgmt::default());
        let mut cm = ShardSpec::new(cfg);
        cm.add_ap(Pos::new(0.0, 0.0), 0, 4);
        cm.add_ap(Pos::new(40.0, 0.0), 0, 4);
        cm.add_client(client(Pos::new(1.0, 1.0), 0));
        cm.add_client(client(Pos::new(41.0, 1.0), 0));
        assert!(cm.partition_lockstep(4, 10).is_none(), "channel mgmt");
    }
}
