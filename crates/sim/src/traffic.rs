//! Traffic generation: MSDU arrival processes and frame-size distributions.
//!
//! The paper buckets data frames into four size classes (Section 6): small
//! (0–400 B), medium (401–800 B), large (801–1200 B) and extra-large
//! (>1200 B), motivated respectively by voice/control traffic and by file
//! transfer, SSH, HTTP and video. [`SizeDist`] draws payload sizes from a
//! weighted mixture over those classes.

use crate::rng::SimRng;
use rand::Rng;
use wifi_frames::timing::Micros;

/// Maximum MSDU payload carried (bytes); 1472 keeps the full MAC frame at
/// the classic 1500-byte size.
pub const MAX_PAYLOAD: u32 = 2304;

/// A weighted mixture of uniform draws over size ranges (inclusive bounds,
/// in *payload* bytes).
#[derive(Clone, Debug)]
pub struct SizeDist {
    buckets: Vec<(f64, u32, u32)>, // (weight, lo, hi)
    total_weight: f64,
}

impl SizeDist {
    /// Builds a distribution from `(weight, lo, hi)` buckets. Panics if no
    /// bucket has positive weight or a bucket is inverted.
    pub fn new(buckets: Vec<(f64, u32, u32)>) -> SizeDist {
        assert!(!buckets.is_empty(), "at least one bucket");
        let mut total = 0.0;
        for &(w, lo, hi) in &buckets {
            assert!(
                w >= 0.0 && lo <= hi && hi <= MAX_PAYLOAD,
                "bad bucket ({w}, {lo}, {hi})"
            );
            total += w;
        }
        assert!(total > 0.0, "total weight must be positive");
        SizeDist {
            buckets,
            total_weight: total,
        }
    }

    /// A mixture resembling conference traffic: many small frames (TCP ACKs,
    /// SSH keystrokes, VoIP), a solid share of MTU-sized transfers, a thin
    /// middle — matching the paper's observation that S and XL dominate.
    pub fn ietf_mix() -> SizeDist {
        SizeDist::new(vec![
            (0.52, 12, 372),    // S class payloads (frame 40–400 B)
            (0.08, 380, 772),   // M class
            (0.07, 780, 1172),  // L class
            (0.33, 1180, 1472), // XL class, mostly full MTU
        ])
    }

    /// All frames one fixed payload size.
    pub fn fixed(size: u32) -> SizeDist {
        SizeDist::new(vec![(1.0, size, size)])
    }

    /// Draws a payload size.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        let mut pick = rng.gen_range(0.0..self.total_weight);
        for &(w, lo, hi) in &self.buckets {
            if pick < w {
                return rng.gen_range(lo..=hi);
            }
            pick -= w;
        }
        // Floating-point edge: fall back to the last bucket.
        let &(_, lo, hi) = self.buckets.last().expect("nonempty");
        rng.gen_range(lo..=hi)
    }
}

/// An MSDU arrival process for one direction of one client.
///
/// Arrivals are a compound Poisson process: *events* arrive exponentially
/// and each event delivers a geometric batch of MSDUs (mean
/// [`FlowConfig::mean_batch`]). A batch of 1 is plain Poisson traffic;
/// larger batches model page loads and file-transfer bursts, which make the
/// set of active links in any one second small and variable — the burstiness
/// real conference traffic has.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Mean arrivals per second in *frames* (across batches). Zero disables
    /// the flow.
    pub mean_fps: f64,
    /// Payload-size distribution.
    pub sizes: SizeDist,
    /// Mean frames per arrival event (geometric); 1.0 = plain Poisson.
    pub mean_batch: f64,
}

impl FlowConfig {
    /// A plain Poisson flow.
    pub fn poisson(mean_fps: f64, sizes: SizeDist) -> FlowConfig {
        FlowConfig {
            mean_fps,
            sizes,
            mean_batch: 1.0,
        }
    }

    /// A bursty flow: `mean_fps` frames per second arriving in geometric
    /// batches of mean `mean_batch`.
    pub fn bursty(mean_fps: f64, sizes: SizeDist, mean_batch: f64) -> FlowConfig {
        FlowConfig {
            mean_fps,
            sizes,
            mean_batch: mean_batch.max(1.0),
        }
    }

    /// A disabled flow.
    pub fn off() -> FlowConfig {
        FlowConfig {
            mean_fps: 0.0,
            sizes: SizeDist::fixed(64),
            mean_batch: 1.0,
        }
    }

    /// Draws the gap to the next arrival *event* (exponential inter-arrival
    /// at rate `mean_fps / mean_batch`). Returns `None` if the flow is
    /// disabled.
    pub fn next_gap(&self, rng: &mut SimRng) -> Option<Micros> {
        if self.mean_fps <= 0.0 {
            return None;
        }
        let event_rate = self.mean_fps / self.mean_batch.max(1.0);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap_s = -u.ln() / event_rate;
        Some((gap_s * 1e6).round().max(1.0) as Micros)
    }

    /// Draws the number of frames delivered by one arrival event
    /// (geometric with mean `mean_batch`, minimum 1).
    pub fn batch_size(&self, rng: &mut SimRng) -> usize {
        if self.mean_batch <= 1.0 {
            return 1;
        }
        // Geometric on {1, 2, ...} with mean m: success prob 1/m.
        let p = 1.0 / self.mean_batch;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (1.0 + (u.ln() / (1.0 - p).ln()).floor()).max(1.0) as usize
    }
}

/// The two flows of a client: uplink (client → AP) and downlink (AP →
/// client, generated at and queued on the AP).
#[derive(Clone, Debug)]
pub struct TrafficProfile {
    /// Client-to-AP flow.
    pub uplink: FlowConfig,
    /// AP-to-client flow.
    pub downlink: FlowConfig,
}

impl TrafficProfile {
    /// A symmetric profile with the IETF size mix at `fps` frames per second
    /// in each direction.
    pub fn symmetric(fps: f64) -> TrafficProfile {
        TrafficProfile {
            uplink: FlowConfig::poisson(fps, SizeDist::ietf_mix()),
            downlink: FlowConfig::poisson(fps, SizeDist::ietf_mix()),
        }
    }

    /// No traffic (an associated but quiet client).
    pub fn silent() -> TrafficProfile {
        TrafficProfile {
            uplink: FlowConfig::off(),
            downlink: FlowConfig::off(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(42, 0)
    }

    #[test]
    fn sizes_stay_in_bucket_union() {
        let d = SizeDist::ietf_mix();
        let mut r = rng();
        for _ in 0..10_000 {
            let s = d.sample(&mut r);
            assert!((12..=1472).contains(&s), "sample {s} out of range");
        }
    }

    #[test]
    fn fixed_dist_is_constant() {
        let d = SizeDist::fixed(777);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 777);
        }
    }

    #[test]
    fn mixture_weights_respected() {
        // Two disjoint buckets at 90/10: the empirical split should be close.
        let d = SizeDist::new(vec![(0.9, 0, 100), (0.1, 1000, 1100)]);
        let mut r = rng();
        let n = 20_000;
        let small = (0..n).filter(|_| d.sample(&mut r) <= 100).count();
        let frac = small as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "bad bucket")]
    fn inverted_bucket_panics() {
        SizeDist::new(vec![(1.0, 100, 50)]);
    }

    #[test]
    #[should_panic(expected = "total weight")]
    fn zero_weight_panics() {
        SizeDist::new(vec![(0.0, 0, 10)]);
    }

    #[test]
    fn poisson_gaps_have_right_mean() {
        let f = FlowConfig::poisson(50.0, SizeDist::fixed(100));
        let mut r = rng();
        let n = 50_000;
        let total: u64 = (0..n).map(|_| f.next_gap(&mut r).unwrap()).sum();
        let mean_us = total as f64 / n as f64;
        // Expected 20_000 µs.
        assert!((mean_us - 20_000.0).abs() < 500.0, "mean {mean_us}");
    }

    #[test]
    fn disabled_flow_yields_none() {
        assert!(FlowConfig::off().next_gap(&mut rng()).is_none());
        assert!(TrafficProfile::silent()
            .uplink
            .next_gap(&mut rng())
            .is_none());
    }

    #[test]
    fn gaps_are_at_least_one_microsecond() {
        let f = FlowConfig::poisson(1e9, SizeDist::fixed(1));
        let mut r = rng();
        for _ in 0..1000 {
            assert!(f.next_gap(&mut r).unwrap() >= 1);
        }
    }
}
