//! Planar geometry for node placement.

/// A position on the venue floor, in meters.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Pos {
    /// East–west coordinate, meters.
    pub x: f64,
    /// North–south coordinate, meters.
    pub y: f64,
}

impl Pos {
    /// Builds a position.
    pub const fn new(x: f64, y: f64) -> Pos {
        Pos { x, y }
    }

    /// Euclidean distance to another position, meters.
    pub fn distance_to(&self, other: Pos) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Pos::new(0.0, 0.0);
        let b = Pos::new(3.0, 4.0);
        assert_eq!(a.distance_to(b), 5.0);
        assert_eq!(b.distance_to(a), 5.0);
        assert_eq!(a.distance_to(a), 0.0);
    }
}
