//! Per-station MAC state: the DCF contention machine's data, the transmit
//! queue, per-peer rate adapters, and counters.
//!
//! `Station` is deliberately a *state container*: the transition logic lives
//! in [`crate::sim::Simulator`], which owns the medium and the event queue.
//! The methods here are the self-contained pieces (queue management, backoff
//! bookkeeping, adapter lookup) that are unit-testable in isolation.

use crate::events::NodeId;
use crate::frame_info::SimFrame;
use crate::geometry::Pos;
use crate::rate::{RateAdaptation, RateAdapter};
use crate::rng::SimRng;
use crate::traffic::TrafficProfile;
use std::collections::{HashMap, VecDeque};
use wifi_frames::fc::FrameKind;
use wifi_frames::mac::MacAddr;
use wifi_frames::phy::Rate;
use wifi_frames::timing::Micros;

/// When a station precedes data frames with an RTS/CTS exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtsPolicy {
    /// Never use RTS/CTS (the default on commodity cards, per the paper).
    Never,
    /// Always use RTS/CTS for unicast data.
    Always,
    /// Use RTS/CTS for payloads strictly larger than the threshold (bytes).
    Threshold(u32),
}

impl RtsPolicy {
    /// Whether a unicast data frame of `payload` bytes takes the RTS path.
    pub fn applies(&self, payload: u32) -> bool {
        match *self {
            RtsPolicy::Never => false,
            RtsPolicy::Always => true,
            RtsPolicy::Threshold(t) => payload > t,
        }
    }
}

/// What a station is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Role {
    /// An access point: beacons, accepts associations, relays downlink.
    Ap {
        /// Beacon body size (depends on SSID length).
        beacon_body_bytes: u32,
    },
    /// A client: associates to an AP and runs traffic flows.
    Client,
}

/// One queued MSDU awaiting transmission.
#[derive(Clone, Debug)]
pub struct Msdu {
    /// Destination MAC (next hop).
    pub dst: MacAddr,
    /// BSSID to stamp on the frame.
    pub bssid: MacAddr,
    /// Payload bytes (zero for management frames).
    pub payload: u32,
    /// What kind of frame this becomes on air.
    pub kind: MsduKind,
    /// Enqueue time (for queueing-delay stats).
    pub enqueued_at: Micros,
}

/// MSDU kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsduKind {
    /// A data frame; `to_ds` is true for client→AP.
    Data {
        /// Direction bit.
        to_ds: bool,
    },
    /// A Null-function frame (power-save signalling; unicast, ACKed, no
    /// payload on air).
    Null,
    /// A beacon (broadcast, no ACK).
    Beacon,
    /// A management frame of the given subtype (unicast when addressed,
    /// ACKed; broadcast probes draw no ACK).
    Mgmt(FrameKind),
}

/// The in-progress transmission operation for the head-of-line MSDU.
#[derive(Clone, Debug)]
pub struct TxOp {
    /// The MSDU.
    pub msdu: Msdu,
    /// Retry count so far for the current fragment (0 = first attempt
    /// pending).
    pub retries: u32,
    /// Payload of the fragment currently being sent (equals
    /// `msdu.payload` when unfragmented).
    pub current_payload: u32,
    /// Payloads of the fragments still to send after the current one
    /// (in send order; empty when unfragmented or on the last fragment).
    pub pending_fragments: Vec<u32>,
    /// Fragment number of the current fragment.
    pub frag_no: u8,
    /// Whether this exchange uses RTS/CTS.
    pub use_rts: bool,
    /// True once the CTS for this attempt has been received.
    pub cts_received: bool,
    /// Sequence number assigned to the MSDU.
    pub seq: u16,
    /// Data rate of the current attempt (fixed per attempt at queue time).
    pub rate: Rate,
    /// When the first attempt hit the air (for acceptance-delay ground
    /// truth); `None` until then.
    pub first_tx_at: Option<Micros>,
}

/// The DCF contention state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MacState {
    /// Nothing to send.
    Idle,
    /// Have a frame; waiting out DIFS/EIFS after the channel went idle.
    WaitDefer,
    /// Counting down backoff slots; `started` is when the countdown began,
    /// `slots_at_start` the remaining slots at that moment.
    Backoff {
        /// Countdown start time.
        started: Micros,
        /// Slots remaining when the countdown began.
        slots_at_start: u32,
    },
    /// Have a frame; channel is busy; backoff frozen.
    Frozen,
    /// Our transmission is in the air.
    Transmitting {
        /// What we are sending.
        phase: TxPhase,
    },
    /// RTS sent; waiting for the CTS.
    AwaitCts,
    /// Data sent; waiting for the ACK.
    AwaitAck,
}

/// What a transmitting station is sending.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxPhase {
    /// An RTS for the current TxOp.
    Rts,
    /// The data/management/beacon frame of the current TxOp.
    Data,
    /// A CTS we owe a peer.
    Cts,
    /// An ACK we owe a peer.
    Ack,
}

/// Per-station counters (ground truth, not sniffer-derived).
#[derive(Clone, Copy, Debug, Default)]
pub struct StationStats {
    /// Data/mgmt transmission attempts (includes retries).
    pub tx_attempts: u64,
    /// MSDUs delivered (ACK received, or broadcast sent).
    pub delivered: u64,
    /// MSDUs dropped at the retry limit.
    pub retry_drops: u64,
    /// MSDUs dropped because the queue was full.
    pub queue_drops: u64,
    /// ACKs sent.
    pub acks_sent: u64,
    /// RTS frames sent.
    pub rts_sent: u64,
    /// CTS frames sent.
    pub cts_sent: u64,
    /// Sum of (delivery time − enqueue time) over delivered MSDUs, µs.
    pub delivery_delay_total_us: u64,
}

/// Struct-of-arrays block of the per-station *hot* state: the fields the
/// event loop touches on every carrier-sense transition, timer delivery and
/// reception, extracted from [`Station`] into parallel vectors indexed by
/// [`NodeId`].
///
/// The carrier-sense busy/release loops walk a listener bitset and touch
/// `sensed`/`nav_until`/`state` for every listening station of every frame;
/// with the fields inline in `Station` (a multi-hundred-byte struct holding
/// queues and adapter maps) each touch was a fresh cache line. Packed
/// columns put 8–16 stations' worth of one field on a line. Cold state
/// (MAC, queue payloads, stats, RNG, adapters) stays in [`Station`] behind
/// the same `NodeId` indexing.
#[derive(Default)]
pub struct HotState {
    /// Contention state.
    pub state: Vec<MacState>,
    /// Remaining backoff slots (meaningful in WaitDefer/Frozen/Backoff).
    pub backoff_slots: Vec<u32>,
    /// Current contention-window size.
    pub cw: Vec<u32>,
    /// Timer generation stamp. The event queue removes cancelled
    /// contention timers eagerly (`EventQueue::cancel_timer`); the
    /// generation survives as a belt-and-braces cross-check at delivery —
    /// a popped timer whose stamp mismatches is stale and dropped. Bump
    /// sites pair with a queue-side cancellation.
    pub timer_gen: Vec<u64>,
    /// Number of carrier-sensed in-flight transmissions.
    pub sensed: Vec<u32>,
    /// NAV expiry.
    pub nav_until: Vec<Micros>,
    /// When the channel last became idle for this station.
    pub idle_since: Vec<Micros>,
    /// Whether the next defer must use EIFS (after an undecodable frame).
    pub use_eifs: Vec<bool>,
    /// End time of the station's own most recent transmission
    /// (half-duplex check).
    pub tx_until: Vec<Micros>,
    /// Index into the simulator's channel list.
    pub channel_idx: Vec<usize>,
    /// Index into the simulator's media. In an unsharded simulator media
    /// are per-channel and this equals `channel_idx`; in a sharded one each
    /// medium is one RF-isolation component (see [`crate::shard`]).
    pub medium_idx: Vec<usize>,
    /// Global station key: the station's index in the *scenario-wide* build
    /// order, stable across shard partitionings (equals the node id in an
    /// unsharded simulator). Keys the station's RNG stream and its fade
    /// links, so a station draws the same values whichever shard it runs in.
    pub key: Vec<u64>,
    /// Mobility generation: how many times the station has moved. Mixed
    /// into the fade-link key ([`HotState::fade_key`]) so a moved station
    /// draws *fresh* fade realizations — physically its links changed —
    /// instead of replaying the fades memoized for its old position.
    pub fade_gen: Vec<u64>,
    /// Lockstep sharding: this station is a passive *shell* — it exists for
    /// identity only (node id, MAC, RNG keying, topology row) and is owned
    /// by another shard. Shells seed no events, draw no randomness, join no
    /// medium, and are skipped by every listener-side handler; their real
    /// behaviour plays out on the owning shard and reaches this one as
    /// ghost transmissions. Always `false` outside lockstep shards.
    pub shell: Vec<bool>,
}

impl HotState {
    /// Appends one station's row; returns its node id.
    pub fn push(
        &mut self,
        channel_idx: usize,
        medium_idx: usize,
        key: u64,
        cw_min: u32,
        shell: bool,
    ) -> NodeId {
        let id = self.state.len();
        self.state.push(MacState::Idle);
        self.backoff_slots.push(0);
        self.cw.push(cw_min);
        self.timer_gen.push(0);
        self.sensed.push(0);
        self.nav_until.push(0);
        self.idle_since.push(0);
        self.use_eifs.push(false);
        self.tx_until.push(0);
        self.channel_idx.push(channel_idx);
        self.medium_idx.push(medium_idx);
        self.key.push(key);
        self.fade_gen.push(0);
        self.shell.push(shell);
        id
    }

    /// The fade-link key of `node`: its global station key, decorrelated by
    /// its mobility generation. Generation 0 (every station until it first
    /// moves) is exactly the bare key, so static scenarios draw the same
    /// fades as ever; each move shifts the station onto fresh fade streams
    /// for all of its links. The generation occupies bits ≥ 44, disjoint
    /// from both the station key space (build indices) and the sniffer link
    /// space at `SNIFFER_LINK_BASE = 1 << 40`.
    #[inline]
    pub fn fade_key(&self, node: NodeId) -> u64 {
        self.key[node] ^ (self.fade_gen[node] << 44)
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when no stations have been added.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// The channel is busy for station `node` right now?
    #[inline]
    pub fn channel_busy(&self, node: NodeId, now: Micros) -> bool {
        self.sensed[node] > 0 || self.nav_until[node] > now
    }

    /// Was station `node` transmitting at any point in `[start, end]`?
    #[inline]
    pub fn was_transmitting_during(&self, node: NodeId, start: Micros, end: Micros) -> bool {
        // tx_until > start means the last transmission was still in the air
        // after `start`; transmissions always begin before the station could
        // hear anything, so overlap reduces to this check.
        let _ = end;
        self.tx_until[node] > start
    }

    /// Invalidates any armed timers of `node`; returns the new generation.
    #[inline]
    pub fn bump_timer_gen(&mut self, node: NodeId) -> u64 {
        self.timer_gen[node] += 1;
        self.timer_gen[node]
    }

    /// Consumes elapsed backoff time of `node`: decrements the remaining
    /// slot count by the number of whole slots that fit in `elapsed`.
    #[inline]
    pub fn consume_backoff(&mut self, node: NodeId, elapsed: Micros, slot_us: Micros) {
        let consumed = (elapsed / slot_us) as u32;
        self.backoff_slots[node] = self.backoff_slots[node].saturating_sub(consumed);
    }
}

/// A station (AP or client): the *cold* per-station state — identity,
/// queues, adapters and counters. The event-loop-hot contention fields live
/// in the simulator's [`HotState`] columns under the same node id.
pub struct Station {
    /// Node id within the simulation.
    pub id: NodeId,
    /// This station's private random stream (backoff, traffic, decode and
    /// jitter draws), keyed by `(scenario seed, global station key)`.
    pub rng: SimRng,
    /// MAC address.
    pub mac: MacAddr,
    /// Current position. Fixed for the life of a scenario unless the
    /// driver moves the station ([`crate::Simulator::move_station`]), which
    /// keeps the topology cache and fade keying in sync.
    pub pos: Pos,
    /// AP or client.
    pub role: Role,
    /// Transmit queue.
    pub queue: VecDeque<Msdu>,
    /// Queue capacity; MSDUs beyond it are dropped.
    pub queue_cap: usize,
    /// In-flight operation for the head-of-line MSDU.
    pub current: Option<TxOp>,
    /// A response (CTS/ACK) owed after SIFS.
    pub pending_response: Option<SimFrame>,
    /// RTS policy for unicast data.
    pub rts_policy: RtsPolicy,
    /// Rate-adaptation algorithm configuration.
    pub adapter_cfg: RateAdaptation,
    /// Per-peer adapters.
    pub adapters: HashMap<MacAddr, Box<dyn RateAdapter>>,
    /// Most recent SNR (dB) observed from each peer.
    pub snr_hints: HashMap<MacAddr, f64>,
    /// Next sequence number.
    pub next_seq: u16,
    /// Has the user powered on (join event fired)?
    pub joined: bool,
    /// Has the user left for good (no re-association)?
    pub departed: bool,
    /// Client: associated AP node, once association completes.
    pub associated_ap: Option<NodeId>,
    /// Traffic profile (clients; ignored for APs).
    pub traffic: TrafficProfile,
    /// Counters.
    pub stats: StationStats,
    /// APs with dynamic channel assignment: per-channel air-time counters
    /// at the last evaluation (empty until the first one).
    pub chan_airtime_snapshot: Vec<u64>,
    /// Fragmentation threshold (payload bytes): unicast data MSDUs larger
    /// than this are sent as a SIFS-separated fragment burst. `None` (the
    /// 2005 default) disables fragmentation.
    pub frag_threshold: Option<u32>,
    /// Power-save Null-frame cadence (clients), µs; `None` = no signalling.
    pub power_save_interval_us: Option<Micros>,
    /// Current power-management bit (toggles with each Null frame).
    pub power_save_state: bool,
}

impl Station {
    /// Creates a station with empty state.
    pub fn new(
        id: NodeId,
        mac: MacAddr,
        pos: Pos,
        role: Role,
        rts_policy: RtsPolicy,
        adapter_cfg: RateAdaptation,
        traffic: TrafficProfile,
    ) -> Station {
        Station {
            id,
            rng: SimRng::new(0, id as u64),
            mac,
            pos,
            role,
            queue: VecDeque::new(),
            queue_cap: 128,
            current: None,
            pending_response: None,
            rts_policy,
            adapter_cfg,
            adapters: HashMap::new(),
            snr_hints: HashMap::new(),
            next_seq: 0,
            joined: false,
            departed: false,
            associated_ap: None,
            traffic,
            stats: StationStats::default(),
            chan_airtime_snapshot: Vec::new(),
            frag_threshold: None,
            power_save_interval_us: None,
            power_save_state: false,
        }
    }

    /// True when this station is an AP.
    pub fn is_ap(&self) -> bool {
        matches!(self.role, Role::Ap { .. })
    }

    /// Enqueues an MSDU; returns false (and counts a drop) when full.
    pub fn enqueue(&mut self, msdu: Msdu) -> bool {
        if self.queue.len() >= self.queue_cap {
            self.stats.queue_drops += 1;
            return false;
        }
        self.queue.push_back(msdu);
        true
    }

    /// Pushes an MSDU at the front (beacons preempt data).
    pub fn enqueue_front(&mut self, msdu: Msdu) {
        self.queue.push_front(msdu);
    }

    /// Assigns the next sequence number.
    pub fn take_seq(&mut self) -> u16 {
        let s = self.next_seq;
        self.next_seq = (self.next_seq + 1) % 4096;
        s
    }

    /// The rate adapter for `peer`, created on first use.
    pub fn adapter_for(&mut self, peer: MacAddr) -> &mut Box<dyn RateAdapter> {
        let cfg = self.adapter_cfg;
        self.adapters.entry(peer).or_insert_with(|| cfg.build())
    }

    /// Picks the data rate for the next attempt to `peer`.
    pub fn pick_rate(&mut self, peer: MacAddr) -> Rate {
        let hint = self.snr_hints.get(&peer).copied();
        self.adapter_for(peer).rate(hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn station() -> Station {
        Station::new(
            0,
            MacAddr::from_id(1),
            Pos::default(),
            Role::Client,
            RtsPolicy::Never,
            RateAdaptation::Arf(Rate::R11),
            TrafficProfile::silent(),
        )
    }

    fn hot_with_one() -> HotState {
        let mut h = HotState::default();
        h.push(0, 0, 0, 31, false);
        h
    }

    fn msdu() -> Msdu {
        Msdu {
            dst: MacAddr::from_id(2),
            bssid: MacAddr::from_id(2),
            payload: 100,
            kind: MsduKind::Data { to_ds: true },
            enqueued_at: 0,
        }
    }

    #[test]
    fn rts_policy_threshold() {
        assert!(!RtsPolicy::Never.applies(5000));
        assert!(RtsPolicy::Always.applies(0));
        let t = RtsPolicy::Threshold(1000);
        assert!(!t.applies(1000));
        assert!(t.applies(1001));
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut s = station();
        s.queue_cap = 3;
        for _ in 0..3 {
            assert!(s.enqueue(msdu()));
        }
        assert!(!s.enqueue(msdu()));
        assert_eq!(s.stats.queue_drops, 1);
        assert_eq!(s.queue.len(), 3);
    }

    #[test]
    fn beacon_preempts_queue() {
        let mut s = station();
        s.enqueue(msdu());
        let mut beacon = msdu();
        beacon.kind = MsduKind::Beacon;
        s.enqueue_front(beacon);
        assert_eq!(s.queue.front().unwrap().kind, MsduKind::Beacon);
    }

    #[test]
    fn seq_numbers_wrap_mod_4096() {
        let mut s = station();
        s.next_seq = 4095;
        assert_eq!(s.take_seq(), 4095);
        assert_eq!(s.take_seq(), 0);
    }

    #[test]
    fn busy_combines_carrier_sense_and_nav() {
        let mut h = hot_with_one();
        assert!(!h.channel_busy(0, 100));
        h.sensed[0] = 1;
        assert!(h.channel_busy(0, 100));
        h.sensed[0] = 0;
        h.nav_until[0] = 200;
        assert!(h.channel_busy(0, 100));
        assert!(!h.channel_busy(0, 200));
    }

    #[test]
    fn backoff_consumption_floors_partial_slots() {
        let mut h = hot_with_one();
        h.backoff_slots[0] = 10;
        h.consume_backoff(0, 59, 20); // 2.95 slots -> 2
        assert_eq!(h.backoff_slots[0], 8);
        h.consume_backoff(0, 1_000_000, 20); // saturates at zero
        assert_eq!(h.backoff_slots[0], 0);
    }

    #[test]
    fn adapters_are_per_peer() {
        let mut s = station();
        let p1 = MacAddr::from_id(10);
        let p2 = MacAddr::from_id(11);
        s.adapter_for(p1).on_failure();
        s.adapter_for(p1).on_failure();
        assert_eq!(s.pick_rate(p1), Rate::R5_5, "p1 stepped down");
        assert_eq!(s.pick_rate(p2), Rate::R11, "p2 untouched");
    }

    #[test]
    fn timer_generation_invalidates() {
        let mut h = hot_with_one();
        let g0 = h.timer_gen[0];
        let g1 = h.bump_timer_gen(0);
        assert!(g1 > g0);
    }

    #[test]
    fn half_duplex_overlap_check() {
        let mut h = hot_with_one();
        h.tx_until[0] = 1000;
        assert!(h.was_transmitting_during(0, 500, 2000));
        assert!(!h.was_transmitting_during(0, 1000, 2000));
    }
}
