//! Parallel cell execution and run-report observability.
//!
//! Every figure of the paper is a sweep: the same scenario re-run across
//! seeds, offered loads, or policy variants, then aggregated. The cells of
//! such a sweep are *independent* — each builds its own [`crate::Simulator`]
//! from its own seed — so they parallelize perfectly. [`run_parallel`] is the
//! work queue that fans cells across a thread pool while keeping the result
//! order identical to serial execution, which is what makes parallel sweeps
//! bit-identical to `--threads 1` runs: determinism comes from per-cell
//! seeding (no shared RNG), order-independence from writing each result into
//! its cell's slot.
//!
//! [`RunReport`] is the observability side: per-cell wall-clock, events
//! processed, frame counts, and events-per-second throughput, serialized as
//! JSON next to the results so a slow sweep can be diagnosed cell by cell.
//! The JSON is hand-rolled (the build environment vendors no serializer);
//! the format is flat enough that this costs a few lines.

use crate::events::QueueStats;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Output slots for [`run_parallel`]: one cell per item, written lock-free.
///
/// Safety rests on the work-queue protocol, not on a lock: the shared
/// `fetch_add` counter hands each index to exactly one worker, so every
/// slot has a single writer and no reader until the scope joins. The join
/// synchronizes-with every worker exit, so the subsequent single-threaded
/// drain observes all writes. A `Mutex<Option<R>>` per slot bought nothing
/// but an uncontended lock/unlock pair on every cell — measurable on
/// sweeps of thousands of sub-millisecond cells (the sharded venue runs).
struct ResultSlots<R> {
    cells: Vec<UnsafeCell<Option<R>>>,
}

// SAFETY: workers only touch disjoint cells (unique indices from the work
// queue), and results cross threads exactly once at scope join.
unsafe impl<R: Send> Sync for ResultSlots<R> {}

impl<R> ResultSlots<R> {
    fn new(n: usize) -> ResultSlots<R> {
        ResultSlots {
            cells: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// Stores the result of item `i`. Caller must be the worker that
    /// claimed `i` from the queue (the sole writer of this cell).
    unsafe fn write(&self, i: usize, r: R) {
        *self.cells[i].get() = Some(r);
    }

    fn into_results(self) -> impl Iterator<Item = R> {
        self.cells.into_iter().map(|c| {
            c.into_inner()
                .expect("worker finished without storing a result")
        })
    }
}

/// Maps `f` over `items` on `threads` worker threads, preserving input
/// order in the output.
///
/// A shared atomic index hands out the next unclaimed cell to whichever
/// worker is free (a work queue, not a static partition — cells vary widely
/// in cost because offered load varies). Each result is written into the
/// slot of its item, so the returned vector is independent of scheduling:
/// `run_parallel(items, 1, f)` and `run_parallel(items, 8, f)` return
/// identical vectors whenever `f` is deterministic per item.
///
/// `threads` is clamped to `[1, items.len()]`; with one thread the loop
/// runs inline with no pool at all.
pub fn run_parallel<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots = ResultSlots::new(items.len());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                // SAFETY: this worker claimed `i` exclusively above.
                unsafe { slots.write(i, r) };
            });
        }
    });
    slots.into_results().collect()
}

/// Runs `f` and returns its result with the elapsed wall-clock milliseconds.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e3)
}

/// Observability record of one sweep cell.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Human-readable cell identity, e.g. `"ramp seed=11 fps=1.7"`.
    pub label: String,
    /// The cell's RNG seed.
    pub seed: u64,
    /// Wall-clock time of the cell, milliseconds (build + run).
    pub wall_ms: f64,
    /// Discrete events the simulator processed
    /// ([`crate::Simulator::events_processed`]).
    pub events: u64,
    /// Frames that went on air (ground-truth transmissions).
    pub frames_on_air: u64,
    /// Frames captured, summed over the cell's sniffers.
    pub frames_captured: u64,
    /// Frames missed (out of range + bit error + hardware drop), summed
    /// over the cell's sniffers.
    pub frames_missed: u64,
    /// Event-queue churn (pushed/popped/stale-dropped/cascaded) — the
    /// scheduler-side cost structure behind `events`.
    pub queue: QueueStats,
}

impl CellReport {
    /// Simulator throughput of this cell: events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ms / 1e3)
    }
}

/// Observability record of one sweep: the run's cells plus totals.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Sweep name (the figure or ablation identifier).
    pub name: String,
    /// Worker threads the sweep ran on.
    pub threads: usize,
    /// Wall-clock of the whole sweep, milliseconds — less than the sum of
    /// cell times whenever parallelism helped.
    pub total_wall_ms: f64,
    /// Per-cell records, in cell order.
    pub cells: Vec<CellReport>,
}

impl RunReport {
    /// Total simulator events across cells.
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }

    /// Aggregate throughput: total events over total (wall-clock) sweep
    /// time, counting parallel speedup.
    pub fn events_per_sec(&self) -> f64 {
        if self.total_wall_ms <= 0.0 {
            return 0.0;
        }
        self.total_events() as f64 / (self.total_wall_ms / 1e3)
    }

    /// Sum of per-cell wall-clock times — the serial-equivalent cost. The
    /// ratio to [`RunReport::total_wall_ms`] is the achieved speedup.
    pub fn cell_wall_ms(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_ms).sum()
    }

    /// One-line human summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "[{}] {} cells on {} thread(s): {:.0} ms wall ({:.0} ms cell time, {:.1}x), \
             {} events, {:.0} events/s",
            self.name,
            self.cells.len(),
            self.threads,
            self.total_wall_ms,
            self.cell_wall_ms(),
            if self.total_wall_ms > 0.0 {
                self.cell_wall_ms() / self.total_wall_ms
            } else {
                1.0
            },
            self.total_events(),
            self.events_per_sec(),
        )
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.cells.len() * 192);
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": {},\n", json_str(&self.name)));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"total_wall_ms\": {},\n",
            json_f64(self.total_wall_ms)
        ));
        out.push_str(&format!(
            "  \"cell_wall_ms\": {},\n",
            json_f64(self.cell_wall_ms())
        ));
        out.push_str(&format!("  \"total_events\": {},\n", self.total_events()));
        out.push_str(&format!(
            "  \"events_per_sec\": {},\n",
            json_f64(self.events_per_sec())
        ));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": {}, \"seed\": {}, \"wall_ms\": {}, \"events\": {}, \
                 \"frames_on_air\": {}, \"frames_captured\": {}, \"frames_missed\": {}, \
                 \"queue_pushed\": {}, \"queue_popped\": {}, \"queue_stale_dropped\": {}, \
                 \"queue_cascaded\": {}, \"events_per_sec\": {}}}{}\n",
                json_str(&c.label),
                c.seed,
                json_f64(c.wall_ms),
                c.events,
                c.frames_on_air,
                c.frames_captured,
                c.frames_missed,
                c.queue.pushed,
                c.queue.popped,
                c.queue.stale_dropped,
                c.queue.cascaded,
                json_f64(c.events_per_sec()),
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`, creating parent directories.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// A JSON string literal (the labels here are ASCII; escaping handles the
/// JSON-mandatory set anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite JSON number (JSON has no NaN/Infinity; those become 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_parallel(&items, 4, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        // A cost function deliberately skewed so cells finish out of order.
        let items: Vec<u64> = (0..40).collect();
        let f = |&x: &u64| -> u64 {
            let spins = (40 - x) * 1000;
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        assert_eq!(run_parallel(&items, 1, f), run_parallel(&items, 8, f));
    }

    #[test]
    fn parallel_degenerate_shapes() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_parallel(&empty, 4, |&x| x).is_empty());
        assert_eq!(run_parallel(&[7u32], 16, |&x| x + 1), vec![8]);
        assert_eq!(run_parallel(&[1u32, 2], 0, |&x| x), vec![1, 2]);
    }

    #[test]
    fn report_json_shape() {
        let report = RunReport {
            name: "test \"sweep\"".to_string(),
            threads: 2,
            total_wall_ms: 10.0,
            cells: vec![
                CellReport {
                    label: "a".into(),
                    seed: 1,
                    wall_ms: 8.0,
                    events: 4000,
                    frames_on_air: 100,
                    frames_captured: 90,
                    frames_missed: 10,
                    queue: QueueStats {
                        pushed: 4100,
                        popped: 4000,
                        stale_dropped: 100,
                        cascaded: 5,
                    },
                },
                CellReport {
                    label: "b".into(),
                    seed: 2,
                    wall_ms: 7.0,
                    events: 2000,
                    frames_on_air: 50,
                    frames_captured: 50,
                    frames_missed: 0,
                    queue: QueueStats::default(),
                },
            ],
        };
        assert_eq!(report.total_events(), 6000);
        assert!((report.cell_wall_ms() - 15.0).abs() < 1e-9);
        assert!((report.events_per_sec() - 600_000.0).abs() < 1e-6);
        let json = report.to_json();
        assert!(json.contains("\"test \\\"sweep\\\"\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"events\": 4000"));
        assert!(json.contains("\"queue_stale_dropped\": 100"));
        assert!(json.contains("\"queue_cascaded\": 5"));
        // Exactly one comma between the two cell objects, none trailing.
        assert_eq!(json.matches("},\n").count(), 1);
        assert!(report.summary().contains("2 cells on 2 thread(s)"));
    }

    #[test]
    fn timed_measures_something() {
        let (v, ms) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn nonfinite_json_numbers_are_sanitized() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(1.5), "1.500");
    }
}
