//! `wifi-congestion` — command-line front end to the congestion analysis.
//!
//! ```text
//! wifi-congestion analyze <trace.pcap>... [--batch]
//!                                             per-second + summary analysis
//! wifi-congestion histogram <trace.pcap>      Fig 5(c) utilization histogram
//! wifi-congestion unrecorded <trace.pcap>     Eq. 1 capture-loss estimate
//! wifi-congestion aps <trace.pcap>            Fig 4(a) AP ranking
//! wifi-congestion simulate <day|plenary|ramp> --out DIR [--seed N]
//!                                             generate pcap traces
//! ```
//!
//! Works on any classic pcap with the radiotap link type — including files
//! produced by real RFMon captures, not just this repo's simulator.
//!
//! `analyze` takes one capture or several per-sniffer captures of the same
//! channel (merged with online deduplication) and streams them by default —
//! a capture larger than RAM analyzes in constant memory. `--batch` keeps
//! the materializing path for A/B comparison.

use congestion::ap_stats::{infer_aps, rank_aps, top_k_share};
use congestion::{analyze, estimate_unrecorded, UtilizationBins};
use ietf80211_congestion::ingest::{analyze_capture_streams, render_analysis};
use ietf80211_congestion::serve::{run_serve, ServeConfig};
use ietf80211_congestion::trace::{read_capture, read_capture_lossy, write_capture};
use ietf_workloads::{ietf_day, ietf_plenary, load_ramp, Scenario, SessionScale};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use wifi_pcap::IngestReport;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("histogram") => with_trace(&args, cmd_histogram),
        Some("unrecorded") => with_trace(&args, cmd_unrecorded),
        Some("aps") => with_trace(&args, cmd_aps),
        Some("simulate") => cmd_simulate(&args),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "wifi-congestion — IEEE 802.11b congestion analysis (IMC 2005 reproduction)

USAGE:
  wifi-congestion analyze    <trace.pcap>... [--batch]
                                            per-second analysis + summary;
                                            several files are treated as
                                            per-sniffer captures of one
                                            channel and merged (streaming
                                            by default, --batch to
                                            materialize)
  wifi-congestion serve      <trace.pcap>... [--socket PATH] [--poll-ms N]
                             [--skew-horizon-us N|none] [--stall-ms N|none]
                             [--heartbeat-s N] [--max-duration-s N]
                                            resident service: tail live /
                                            rotating captures, merge online,
                                            classify congestion per second;
                                            status JSON over the unix socket
                                            (`status`, `seconds`,
                                            `shutdown` commands)
  wifi-congestion histogram  <trace.pcap>   utilization histogram (Fig 5c)
  wifi-congestion unrecorded <trace.pcap>   capture-loss estimate (Eq. 1)
  wifi-congestion aps        <trace.pcap>   AP activity ranking (Fig 4a)
  wifi-congestion simulate   <day|plenary|ramp> --out DIR
                             [--seed N] [--users N] [--duration SECONDS]
                                            generate radiotap pcap traces"
    );
}

fn with_trace(
    args: &[String],
    f: fn(&[wifi_frames::FrameRecord]) -> Result<(), String>,
) -> Result<(), String> {
    let path = args
        .get(1)
        .ok_or_else(|| "missing <trace.pcap> argument".to_string())?;
    let records = read_capture(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{path} contains no parseable 802.11 records"));
    }
    f(&records)
}

/// Prints a capture's damage accounting on stderr when anything was
/// skipped; clean ingestions stay silent.
fn report_damage(path: &str, report: &IngestReport) {
    if !report.is_clean() {
        eprintln!("note: {path} had skips: {}", report.to_json());
    }
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let mut batch = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for a in args {
        match a.as_str() {
            "--batch" => batch = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            p => paths.push(PathBuf::from(p)),
        }
    }
    if paths.is_empty() {
        return Err("missing <trace.pcap> argument".to_string());
    }
    let (stats, frames) = if batch {
        // A/B reference path: materialize every trace, then merge.
        let mut traces = Vec::with_capacity(paths.len());
        for p in &paths {
            let capture =
                read_capture_lossy(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            report_damage(&p.display().to_string(), &capture.report);
            traces.push(capture.records);
        }
        let views: Vec<&[wifi_frames::FrameRecord]> = traces.iter().map(|t| t.as_slice()).collect();
        let merged = congestion::merge_traces(&views);
        (analyze(&merged), merged.len() as u64)
    } else {
        let out =
            analyze_capture_streams(&paths).map_err(|e| format!("cannot read {:?}: {e}", paths))?;
        for (p, source) in paths.iter().zip(&out.sources) {
            report_damage(&p.display().to_string(), &source.report);
            if let Some(e) = &source.error {
                eprintln!("error: cannot read {}: {e} (source degraded)", p.display());
            }
        }
        if paths.len() > 1 {
            eprintln!(
                "merged {} records; first-capture split: {:?}",
                out.merged_records, out.contributed
            );
        }
        (out.per_second, out.merged_records)
    };
    if stats.is_empty() {
        return Err("no parseable 802.11 records in the input".to_string());
    }
    print!("{}", render_analysis(&stats, frames));
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut socket: Option<PathBuf> = None;
    let mut poll_ms: Option<u64> = None;
    let mut skew: Option<Option<u64>> = None;
    let mut stall: Option<Option<u64>> = None;
    let mut heartbeat_s: Option<u64> = None;
    let mut max_duration_s: Option<u64> = None;
    let mut i = 0;
    let int = |args: &[String], i: usize, flag: &str| -> Result<u64, String> {
        args.get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("{flag} must be an integer"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                socket = Some(PathBuf::from(
                    args.get(i + 1).ok_or("--socket needs a path")?,
                ));
                i += 2;
            }
            "--poll-ms" => {
                poll_ms = Some(int(args, i, "--poll-ms")?);
                i += 2;
            }
            "--skew-horizon-us" => {
                let v = args
                    .get(i + 1)
                    .ok_or("--skew-horizon-us needs µs or `none`")?;
                skew = Some(if v == "none" {
                    None
                } else {
                    Some(
                        v.parse()
                            .map_err(|_| "--skew-horizon-us must be an integer or `none`")?,
                    )
                });
                i += 2;
            }
            "--stall-ms" => {
                let v = args.get(i + 1).ok_or("--stall-ms needs ms or `none`")?;
                stall = Some(if v == "none" {
                    None
                } else {
                    Some(
                        v.parse()
                            .map_err(|_| "--stall-ms must be an integer or `none`")?,
                    )
                });
                i += 2;
            }
            "--heartbeat-s" => {
                heartbeat_s = Some(int(args, i, "--heartbeat-s")?);
                i += 2;
            }
            "--max-duration-s" => {
                max_duration_s = Some(int(args, i, "--max-duration-s")?);
                i += 2;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            p => {
                paths.push(PathBuf::from(p));
                i += 1;
            }
        }
    }
    if paths.is_empty() {
        return Err("missing <trace.pcap> argument".to_string());
    }
    let mut cfg = ServeConfig::new(paths);
    cfg.socket = socket;
    if let Some(v) = poll_ms {
        cfg.poll_ms = v;
    }
    if let Some(v) = skew {
        cfg.skew_horizon_us = v;
    }
    if let Some(v) = stall {
        cfg.stall_timeout_ms = v;
    }
    if let Some(v) = heartbeat_s {
        cfg.heartbeat_s = v;
    }
    cfg.max_duration_s = max_duration_s;
    let out = run_serve(&cfg).map_err(|e| format!("serve failed: {e}"))?;
    for (p, source) in cfg.paths.iter().zip(&out.sources) {
        report_damage(&p.display().to_string(), &source.report);
        if let Some(e) = &source.error {
            eprintln!("error: cannot read {}: {e} (source degraded)", p.display());
        }
    }
    if cfg.paths.len() > 1 {
        eprintln!(
            "merged {} records; first-capture split: {:?}",
            out.merged_records, out.contributed
        );
    }
    print!("{}", render_analysis(&out.per_second, out.merged_records));
    Ok(())
}

fn cmd_histogram(records: &[wifi_frames::FrameRecord]) -> Result<(), String> {
    let stats = analyze(records);
    let bins = UtilizationBins::build(&stats);
    let max = bins
        .histogram()
        .iter()
        .map(|&(_, n)| n)
        .max()
        .unwrap_or(1)
        .max(1);
    for (u, n) in bins.histogram() {
        if n > 0 {
            let bar = "#".repeat((n * 60 / max) as usize);
            println!("{u:3}% {n:6} {bar}");
        }
    }
    println!("\nmode: {:?}%", bins.mode());
    Ok(())
}

fn cmd_unrecorded(records: &[wifi_frames::FrameRecord]) -> Result<(), String> {
    let est = estimate_unrecorded(records);
    println!("captured frames:        {}", est.captured);
    println!("inferred missing DATA:  {}", est.counts.data);
    println!("inferred missing RTS:   {}", est.counts.rts);
    println!("inferred missing CTS:   {}", est.counts.cts);
    println!("unrecorded percentage:  {:.2}%", est.unrecorded_pct());
    Ok(())
}

fn cmd_aps(records: &[wifi_frames::FrameRecord]) -> Result<(), String> {
    let aps = infer_aps(records);
    if aps.is_empty() {
        return Err("no beacons in trace: cannot identify APs".into());
    }
    let ranked = rank_aps(records, &aps);
    println!("rank\tAP\t\t\tframes");
    for (i, ap) in ranked.iter().take(15).enumerate() {
        println!("{}\t{}\t{}", i + 1, ap.mac, ap.frames);
    }
    println!(
        "\ntop-{} share: {:.2}%",
        ranked.len().min(15),
        top_k_share(&ranked, 15)
    );
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let kind = args
        .get(1)
        .ok_or_else(|| "missing scenario: day | plenary | ramp".to_string())?
        .clone();
    let mut out: Option<PathBuf> = None;
    let mut seed = 1u64;
    let mut users: Option<usize> = None;
    let mut duration_s: Option<u64> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out = Some(PathBuf::from(
                    args.get(i + 1).ok_or("--out needs a directory")?,
                ));
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer")?;
                i += 2;
            }
            "--users" => {
                users = Some(
                    args.get(i + 1)
                        .ok_or("--users needs a value")?
                        .parse()
                        .map_err(|_| "--users must be an integer")?,
                );
                i += 2;
            }
            "--duration" => {
                duration_s = Some(
                    args.get(i + 1)
                        .ok_or("--duration needs seconds")?
                        .parse()
                        .map_err(|_| "--duration must be an integer (seconds)")?,
                );
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let out = out.ok_or("missing --out DIR")?;
    std::fs::create_dir_all(&out).map_err(|e| format!("cannot create {out:?}: {e}"))?;

    let scenario: Scenario = match kind.as_str() {
        "day" => {
            let mut scale = SessionScale::day_default(seed);
            if let Some(u) = users {
                scale.users = u;
            }
            if let Some(d) = duration_s {
                scale.duration_s = d;
            }
            ietf_day(scale)
        }
        "plenary" => {
            let mut scale = SessionScale::plenary_default(seed);
            if let Some(u) = users {
                scale.users = u;
            }
            if let Some(d) = duration_s {
                scale.duration_s = d;
            }
            ietf_plenary(scale)
        }
        "ramp" => load_ramp(seed, users.unwrap_or(200), duration_s.unwrap_or(240), 1.7),
        other => return Err(format!("unknown scenario `{other}`")),
    };
    eprintln!("running scenario `{kind}` (seed {seed}) …");
    let result = scenario.run();
    for (i, trace) in result.traces.iter().enumerate() {
        let path = out.join(format!("{kind}_sniffer{i}.pcap"));
        let n = write_capture(&path, trace).map_err(|e| format!("write {path:?}: {e}"))?;
        println!("{}: {n} records", path.display());
    }
    Ok(())
}
