//! `wifi-congestion` — command-line front end to the congestion analysis.
//!
//! ```text
//! wifi-congestion analyze <trace.pcap>... [--batch]
//!                                             per-second + summary analysis
//! wifi-congestion histogram <trace.pcap>      Fig 5(c) utilization histogram
//! wifi-congestion unrecorded <trace.pcap>     Eq. 1 capture-loss estimate
//! wifi-congestion aps <trace.pcap>            Fig 4(a) AP ranking
//! wifi-congestion simulate <day|plenary|ramp> --out DIR [--seed N]
//!                                             generate pcap traces
//! ```
//!
//! Works on any classic pcap with the radiotap link type — including files
//! produced by real RFMon captures, not just this repo's simulator.
//!
//! `analyze` takes one capture or several per-sniffer captures of the same
//! channel (merged with online deduplication) and streams them by default —
//! a capture larger than RAM analyzes in constant memory. `--batch` keeps
//! the materializing path for A/B comparison.

use congestion::ap_stats::{infer_aps, rank_aps, top_k_share};
use congestion::persec::SecondStats;
use congestion::{analyze, estimate_unrecorded, CongestionClassifier, UtilizationBins};
use ietf80211_congestion::ingest::analyze_capture_streams;
use ietf80211_congestion::trace::{read_capture, read_capture_lossy, write_capture};
use ietf_workloads::{ietf_day, ietf_plenary, load_ramp, Scenario, SessionScale};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use wifi_pcap::IngestReport;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("histogram") => with_trace(&args, cmd_histogram),
        Some("unrecorded") => with_trace(&args, cmd_unrecorded),
        Some("aps") => with_trace(&args, cmd_aps),
        Some("simulate") => cmd_simulate(&args),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "wifi-congestion — IEEE 802.11b congestion analysis (IMC 2005 reproduction)

USAGE:
  wifi-congestion analyze    <trace.pcap>... [--batch]
                                            per-second analysis + summary;
                                            several files are treated as
                                            per-sniffer captures of one
                                            channel and merged (streaming
                                            by default, --batch to
                                            materialize)
  wifi-congestion histogram  <trace.pcap>   utilization histogram (Fig 5c)
  wifi-congestion unrecorded <trace.pcap>   capture-loss estimate (Eq. 1)
  wifi-congestion aps        <trace.pcap>   AP activity ranking (Fig 4a)
  wifi-congestion simulate   <day|plenary|ramp> --out DIR
                             [--seed N] [--users N] [--duration SECONDS]
                                            generate radiotap pcap traces"
    );
}

fn with_trace(
    args: &[String],
    f: fn(&[wifi_frames::FrameRecord]) -> Result<(), String>,
) -> Result<(), String> {
    let path = args
        .get(1)
        .ok_or_else(|| "missing <trace.pcap> argument".to_string())?;
    let records = read_capture(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{path} contains no parseable 802.11 records"));
    }
    f(&records)
}

/// Prints a capture's damage accounting on stderr when anything was
/// skipped; clean ingestions stay silent.
fn report_damage(path: &str, report: &IngestReport) {
    if !report.is_clean() {
        eprintln!("note: {path} had skips: {}", report.to_json());
    }
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let mut batch = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for a in args {
        match a.as_str() {
            "--batch" => batch = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            p => paths.push(PathBuf::from(p)),
        }
    }
    if paths.is_empty() {
        return Err("missing <trace.pcap> argument".to_string());
    }
    let (stats, frames) = if batch {
        // A/B reference path: materialize every trace, then merge.
        let mut traces = Vec::with_capacity(paths.len());
        for p in &paths {
            let capture =
                read_capture_lossy(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            report_damage(&p.display().to_string(), &capture.report);
            traces.push(capture.records);
        }
        let views: Vec<&[wifi_frames::FrameRecord]> = traces.iter().map(|t| t.as_slice()).collect();
        let merged = congestion::merge_traces(&views);
        (analyze(&merged), merged.len() as u64)
    } else {
        let out =
            analyze_capture_streams(&paths).map_err(|e| format!("cannot read {:?}: {e}", paths))?;
        for (p, report) in paths.iter().zip(&out.reports) {
            report_damage(&p.display().to_string(), report);
        }
        if paths.len() > 1 {
            eprintln!(
                "merged {} records; first-capture split: {:?}",
                out.merged_records, out.contributed
            );
        }
        (out.per_second, out.merged_records)
    };
    if stats.is_empty() {
        return Err("no parseable 802.11 records in the input".to_string());
    }
    print_analysis(&stats, frames)
}

fn print_analysis(stats: &[SecondStats], frames: u64) -> Result<(), String> {
    let bins = UtilizationBins::build(stats);
    let classifier = CongestionClassifier::from_measurements(&bins);
    println!("frames: {frames}");
    println!(
        "span: {:.1} s ({} analyzed seconds)",
        (stats.last().unwrap().second - stats.first().unwrap().second + 1) as f64,
        stats.len()
    );
    let mut high = 0u64;
    let mut moderate = 0u64;
    let mut idle = 0u64;
    for s in stats {
        match classifier.classify(s.utilization_pct()) {
            congestion::CongestionLevel::High => high += 1,
            congestion::CongestionLevel::Moderate => moderate += 1,
            congestion::CongestionLevel::Uncongested => idle += 1,
        }
    }
    println!(
        "congestion: {idle} uncongested s, {moderate} moderate s, {high} high s \
         (thresholds {:.0}% / {:.0}%)",
        classifier.low_pct, classifier.high_pct
    );
    println!("utilization mode: {:?}%", bins.mode());
    let total_thr: f64 = stats.iter().map(|s| s.throughput_mbps()).sum();
    let total_good: f64 = stats.iter().map(|s| s.goodput_mbps()).sum();
    let n = stats.len().max(1) as f64;
    println!(
        "mean throughput {:.2} Mbps, mean goodput {:.2} Mbps",
        total_thr / n,
        total_good / n
    );
    println!("\nsec\tutil%\tthr\tgood\tdata/s\tretr/s");
    for s in stats.iter().take(30) {
        println!(
            "{}\t{:.1}\t{:.2}\t{:.2}\t{}\t{}",
            s.second,
            s.utilization_pct(),
            s.throughput_mbps(),
            s.goodput_mbps(),
            s.data,
            s.retries,
        );
    }
    if stats.len() > 30 {
        println!("… ({} more seconds)", stats.len() - 30);
    }
    Ok(())
}

fn cmd_histogram(records: &[wifi_frames::FrameRecord]) -> Result<(), String> {
    let stats = analyze(records);
    let bins = UtilizationBins::build(&stats);
    let max = bins
        .histogram()
        .iter()
        .map(|&(_, n)| n)
        .max()
        .unwrap_or(1)
        .max(1);
    for (u, n) in bins.histogram() {
        if n > 0 {
            let bar = "#".repeat((n * 60 / max) as usize);
            println!("{u:3}% {n:6} {bar}");
        }
    }
    println!("\nmode: {:?}%", bins.mode());
    Ok(())
}

fn cmd_unrecorded(records: &[wifi_frames::FrameRecord]) -> Result<(), String> {
    let est = estimate_unrecorded(records);
    println!("captured frames:        {}", est.captured);
    println!("inferred missing DATA:  {}", est.counts.data);
    println!("inferred missing RTS:   {}", est.counts.rts);
    println!("inferred missing CTS:   {}", est.counts.cts);
    println!("unrecorded percentage:  {:.2}%", est.unrecorded_pct());
    Ok(())
}

fn cmd_aps(records: &[wifi_frames::FrameRecord]) -> Result<(), String> {
    let aps = infer_aps(records);
    if aps.is_empty() {
        return Err("no beacons in trace: cannot identify APs".into());
    }
    let ranked = rank_aps(records, &aps);
    println!("rank\tAP\t\t\tframes");
    for (i, ap) in ranked.iter().take(15).enumerate() {
        println!("{}\t{}\t{}", i + 1, ap.mac, ap.frames);
    }
    println!(
        "\ntop-{} share: {:.2}%",
        ranked.len().min(15),
        top_k_share(&ranked, 15)
    );
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let kind = args
        .get(1)
        .ok_or_else(|| "missing scenario: day | plenary | ramp".to_string())?
        .clone();
    let mut out: Option<PathBuf> = None;
    let mut seed = 1u64;
    let mut users: Option<usize> = None;
    let mut duration_s: Option<u64> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out = Some(PathBuf::from(
                    args.get(i + 1).ok_or("--out needs a directory")?,
                ));
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer")?;
                i += 2;
            }
            "--users" => {
                users = Some(
                    args.get(i + 1)
                        .ok_or("--users needs a value")?
                        .parse()
                        .map_err(|_| "--users must be an integer")?,
                );
                i += 2;
            }
            "--duration" => {
                duration_s = Some(
                    args.get(i + 1)
                        .ok_or("--duration needs seconds")?
                        .parse()
                        .map_err(|_| "--duration must be an integer (seconds)")?,
                );
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let out = out.ok_or("missing --out DIR")?;
    std::fs::create_dir_all(&out).map_err(|e| format!("cannot create {out:?}: {e}"))?;

    let scenario: Scenario = match kind.as_str() {
        "day" => {
            let mut scale = SessionScale::day_default(seed);
            if let Some(u) = users {
                scale.users = u;
            }
            if let Some(d) = duration_s {
                scale.duration_s = d;
            }
            ietf_day(scale)
        }
        "plenary" => {
            let mut scale = SessionScale::plenary_default(seed);
            if let Some(u) = users {
                scale.users = u;
            }
            if let Some(d) = duration_s {
                scale.duration_s = d;
            }
            ietf_plenary(scale)
        }
        "ramp" => load_ramp(seed, users.unwrap_or(200), duration_s.unwrap_or(240), 1.7),
        other => return Err(format!("unknown scenario `{other}`")),
    };
    eprintln!("running scenario `{kind}` (seed {seed}) …");
    let result = scenario.run();
    for (i, trace) in result.traces.iter().enumerate() {
        let path = out.join(format!("{kind}_sniffer{i}.pcap"));
        let n = write_capture(&path, trace).map_err(|e| format!("write {path:?}: {e}"))?;
        println!("{}: {n} records", path.display());
    }
    Ok(())
}
