//! Capture-file glue: persist simulated sniffer traces as pcap files with
//! radiotap headers (what tethereal in RFMon mode wrote in 2005), and
//! ingest such files back into analysis records.
//!
//! The export path reconstructs full frame bytes from the compact
//! [`FrameRecord`]s (payloads zero-filled — the study's sniffers kept only
//! the first 250 bytes anyway), and the import path exercises the same
//! truncated-header parsing a real trace analysis needs.

use std::io::{self, Read};
use std::path::Path;
use wifi_frames::radiotap::{self, CaptureMeta, FLAG_FCS_AT_END};
use wifi_frames::record::FrameRecord;
use wifi_frames::wire;
use wifi_pcap::pcapng::PcapNgReader;
use wifi_pcap::{
    is_pcapng, IngestReport, LinkType, LossyPcapNgStream, LossyPcapStream, PcapError, PcapReader,
    PcapWriter, Polled,
};

/// The snap length the study used.
pub const STUDY_SNAPLEN: u32 = 250;

/// Errors from capture import.
#[derive(Debug)]
pub enum CaptureError {
    /// Underlying pcap problem.
    Pcap(PcapError),
    /// A record's radiotap header was undecodable.
    Radiotap(radiotap::RadiotapError),
    /// The file's link type is not radiotap.
    WrongLinkType(LinkType),
    /// The decoder driving this source panicked; the payload is the panic
    /// message. Isolated to the source so sibling captures keep analyzing.
    Panicked(String),
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Pcap(e) => write!(f, "pcap error: {e}"),
            CaptureError::Radiotap(e) => write!(f, "radiotap error: {e}"),
            CaptureError::WrongLinkType(lt) => {
                write!(f, "expected radiotap link type, found {lt:?}")
            }
            CaptureError::Panicked(msg) => write!(f, "decoder panicked: {msg}"),
        }
    }
}

impl std::error::Error for CaptureError {}

impl From<PcapError> for CaptureError {
    fn from(e: PcapError) -> Self {
        CaptureError::Pcap(e)
    }
}

/// Writes a sniffer trace to `path` as a radiotap pcap with the study's
/// 250-byte snap length. Returns the number of records written.
pub fn write_capture(path: &Path, records: &[FrameRecord]) -> Result<u64, CaptureError> {
    write_capture_with_snaplen(path, records, STUDY_SNAPLEN)
}

/// [`write_capture`] with an explicit snap length (0 = no truncation).
pub fn write_capture_with_snaplen(
    path: &Path,
    records: &[FrameRecord],
    snaplen: u32,
) -> Result<u64, CaptureError> {
    let mut writer = CaptureWriter::create(path, snaplen)?;
    for r in records {
        writer.write_record(r)?;
    }
    writer.finish()
}

/// Streaming counterpart of [`write_capture_with_snaplen`]: records go to
/// disk one at a time, so a trace generator never has to hold the full
/// trace. Each record is re-encoded as radiotap + 802.11 wire bytes exactly
/// as the batch writer does.
pub struct CaptureWriter {
    writer: PcapWriter<io::BufWriter<std::fs::File>>,
}

impl CaptureWriter {
    /// Creates (truncates) `path` as a radiotap pcap with the given snap
    /// length (0 = no truncation).
    pub fn create(path: &Path, snaplen: u32) -> Result<CaptureWriter, CaptureError> {
        let file = std::fs::File::create(path).map_err(PcapError::Io)?;
        let writer = PcapWriter::new(io::BufWriter::new(file), LinkType::Radiotap, snaplen)?;
        Ok(CaptureWriter { writer })
    }

    /// Serializes and appends one record.
    pub fn write_record(&mut self, r: &FrameRecord) -> Result<(), CaptureError> {
        let meta = CaptureMeta {
            tsft_us: r.timestamp_us,
            flags: FLAG_FCS_AT_END,
            rate: r.rate,
            channel: r.channel,
            signal_dbm: r.signal_dbm,
            noise_dbm: -95,
            antenna: 0,
        };
        let frame = record_to_frame(r);
        let bytes = wire::encode(&frame);
        let packet = radiotap::encode_packet(&meta, &bytes);
        self.writer.write_packet(r.timestamp_us, &packet)?;
        Ok(())
    }

    /// Flushes and returns the number of records written.
    pub fn finish(mut self) -> Result<u64, CaptureError> {
        self.writer.flush()?;
        Ok(self.writer.packets_written())
    }
}

/// A reader with its peeked magic bytes replayed in front of it.
type Replayed<R> = io::Chain<io::Cursor<Vec<u8>>, R>;

/// Peeks the first four bytes of a reader (the container magic) and hands
/// back a stream that replays them: container detection without buffering
/// the file.
fn peek_magic<R: Read>(mut reader: R) -> io::Result<(Vec<u8>, Replayed<R>)> {
    let mut head = Vec::with_capacity(4);
    let mut byte = [0u8; 1];
    while head.len() < 4 {
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // A live source that has not produced its magic yet: wait for
            // it (the source turns into EOF if the feed stops for good).
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    Ok((head.clone(), io::Cursor::new(head).chain(reader)))
}

/// Reads a radiotap capture back into analysis records, auto-detecting the
/// container (classic pcap or pcapng by leading magic). Handles snaplen
/// truncation via header-only parsing plus the original-length field, just
/// as an analysis of the study's real traces must.
///
/// Streams the file through the zero-copy reader paths in fixed memory —
/// only the records, never the file, are materialized.
pub fn read_capture(path: &Path) -> Result<Vec<FrameRecord>, CaptureError> {
    let file = std::fs::File::open(path).map_err(PcapError::Io)?;
    let (magic, source) = peek_magic(io::BufReader::new(file)).map_err(PcapError::Io)?;
    let mut out = Vec::new();
    let mut push_record = |data: &[u8], orig_len: u32| -> Result<(), CaptureError> {
        let (meta, frame_bytes) = radiotap::parse_packet(data).map_err(CaptureError::Radiotap)?;
        // The radiotap header is never truncated (25 bytes < any snaplen we
        // use); the frame behind it may be. A crafted capture can still
        // claim an original length smaller than the header it carries, so
        // saturate rather than wrap the subtraction.
        let radiotap_len = data.len() - frame_bytes.len();
        let frame_orig_len = orig_len.saturating_sub(radiotap_len as u32);
        if let Ok(header) = wire::parse_header(frame_bytes) {
            out.push(FrameRecord::from_header(&header, frame_orig_len, &meta));
        }
        // Mangled frames are skipped, as a real analysis must.
        Ok(())
    };
    if is_pcapng(&magic) {
        let mut reader = PcapNgReader::new(source);
        while let Some(pkt) = reader.next_packet_ref()? {
            if pkt.link != LinkType::Radiotap {
                return Err(CaptureError::WrongLinkType(pkt.link));
            }
            push_record(pkt.data, pkt.orig_len)?;
        }
    } else {
        let mut reader = PcapReader::new(source)?;
        if reader.link_type() != LinkType::Radiotap {
            return Err(CaptureError::WrongLinkType(reader.link_type()));
        }
        while let Some(pkt) = reader.next_packet_ref()? {
            push_record(pkt.data, pkt.orig_len)?;
        }
    }
    Ok(out)
}

/// A lossy capture ingestion: whatever records survived decoding, plus a
/// forensic report of everything that was skipped along the way.
#[derive(Debug, Clone)]
pub struct LossyCapture {
    /// Successfully decoded analysis records, in capture order.
    pub records: Vec<FrameRecord>,
    /// Container- and frame-level damage accounting.
    pub report: IngestReport,
}

/// Reads a radiotap capture in lossy mode: damaged container blocks are
/// resynchronized over, and records whose radiotap header or MAC frame is
/// undecodable are counted rather than aborting the read. The only hard
/// errors are an unreadable file, an unrecognizable classic-pcap global
/// header, or a wrong (non-radiotap) link type — those mean "not a sniffer
/// trace", not "a damaged one".
pub fn read_capture_lossy(path: &Path) -> Result<LossyCapture, CaptureError> {
    let bytes = std::fs::read(path).map_err(PcapError::Io)?;
    read_capture_lossy_bytes(&bytes)
}

/// [`read_capture_lossy`] over an in-memory image (what the fault-injection
/// harness feeds).
pub fn read_capture_lossy_bytes(bytes: &[u8]) -> Result<LossyCapture, CaptureError> {
    let mut stream = CaptureStream::from_reader(bytes)?;
    let records: Vec<FrameRecord> = stream.by_ref().collect();
    let report = stream.finish()?;
    Ok(LossyCapture { records, report })
}

/// Decodes one captured radiotap packet into an analysis record, counting
/// (rather than propagating) radiotap and frame-header failures — the shared
/// frame-level half of every lossy ingestion path.
///
/// Every reader in `wifi_pcap` guarantees `orig_len >= data.len()`, which
/// with an untruncated radiotap header implies the subtraction below cannot
/// underflow on reader-produced input; the `saturating_sub` guards the
/// crafted-capture case where a record *claims* an original length smaller
/// than the radiotap header it carries.
fn decode_packet(data: &[u8], orig_len: u32, report: &mut IngestReport) -> Option<FrameRecord> {
    let (meta, frame_bytes) = match radiotap::parse_packet(data) {
        Ok(parsed) => parsed,
        Err(_) => {
            report.undecodable_radiotap += 1;
            return None;
        }
    };
    let radiotap_len = data.len() - frame_bytes.len();
    let frame_orig_len = orig_len.saturating_sub(radiotap_len as u32);
    match wire::parse_header(frame_bytes) {
        Ok(header) => Some(FrameRecord::from_header(&header, frame_orig_len, &meta)),
        Err(_) => {
            report.undecodable_frames += 1;
            None
        }
    }
}

/// The container half of a streaming capture: either classic pcap or pcapng,
/// each over a chunked source that replays the peeked magic bytes.
enum StreamInner<R: Read> {
    Classic(LossyPcapStream<Replayed<R>>),
    Ng(LossyPcapNgStream<Replayed<R>>),
}

/// A streaming lossy capture ingestion: pulls records one at a time from any
/// byte source in O(chunk) memory, so a capture larger than RAM analyzes
/// fine. The iterator yields decoded [`FrameRecord`]s; damage is accounted
/// exactly as in [`read_capture_lossy`] and read back via
/// [`CaptureStream::report`] or [`CaptureStream::finish`].
///
/// Hard failures (an I/O error mid-stream, a non-radiotap link type) end the
/// iteration early and surface from [`CaptureStream::finish`]; everything
/// recoverable is skip-counted instead.
pub struct CaptureStream<R: Read = Box<dyn Read + Send>> {
    inner: StreamInner<R>,
    /// Frame-level skip counters (the container counters live inside the
    /// lossy container stream).
    frame_report: IngestReport,
    failed: Option<CaptureError>,
}

impl CaptureStream<io::BufReader<std::fs::File>> {
    /// Opens a capture file for streaming ingestion.
    pub fn open(path: &Path) -> Result<Self, CaptureError> {
        let file = std::fs::File::open(path).map_err(PcapError::Io)?;
        CaptureStream::from_reader(io::BufReader::new(file))
    }
}

impl<R: Read> CaptureStream<R> {
    /// Wraps any byte source. The container is detected from the first four
    /// bytes; a classic-pcap global header is validated eagerly (the only
    /// eager hard errors — everything later is lossy or deferred to
    /// [`CaptureStream::finish`]).
    pub fn from_reader(reader: R) -> Result<Self, CaptureError> {
        let (magic, source) = peek_magic(reader).map_err(PcapError::Io)?;
        let inner = if is_pcapng(&magic) {
            StreamInner::Ng(LossyPcapNgStream::new(source))
        } else {
            let stream = LossyPcapStream::new(source)?;
            if stream.link() != LinkType::Radiotap {
                return Err(CaptureError::WrongLinkType(stream.link()));
            }
            StreamInner::Classic(stream)
        };
        Ok(CaptureStream {
            inner,
            frame_report: IngestReport::default(),
            failed: None,
        })
    }

    /// The damage accounting so far: container-level counters from the
    /// lossy reader plus the frame-level skip counters.
    pub fn report(&self) -> IngestReport {
        let mut report = *match &self.inner {
            StreamInner::Classic(s) => s.report(),
            StreamInner::Ng(s) => s.report(),
        };
        report.merge(&self.frame_report);
        // `merge` double-counts nothing: the two halves fill disjoint
        // fields, except records_ok/recovered which frame_report never sets.
        report
    }

    /// Consumes the stream, returning the final accounting — or the hard
    /// error that ended iteration early, if any. Call after draining the
    /// iterator.
    pub fn finish(self) -> Result<IngestReport, CaptureError> {
        let report = self.report();
        match self.failed {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Consumes the stream into its accounting *and* whatever hard error
    /// ended it, without collapsing the two — a multi-source analysis keeps
    /// each source's partial accounting even when that source failed.
    pub fn into_outcome(self) -> (IngestReport, Option<CaptureError>) {
        let report = self.report();
        (report, self.failed)
    }

    /// Non-blocking pull: like the `Iterator` impl, but a live source with
    /// no decodable bytes buffered yet reports [`CapturePoll::Pending`]
    /// (with no state change) instead of erroring out.
    pub fn poll_next(&mut self) -> CapturePoll {
        let CaptureStream {
            inner,
            frame_report,
            failed,
        } = self;
        if failed.is_some() {
            return CapturePoll::End;
        }
        loop {
            match inner {
                StreamInner::Classic(s) => match s.poll_packet() {
                    Ok(Polled::Packet(pkt)) => {
                        if let Some(r) = decode_packet(pkt.data, pkt.orig_len, frame_report) {
                            return CapturePoll::Record(r);
                        }
                    }
                    Ok(Polled::Pending) => return CapturePoll::Pending,
                    Ok(Polled::End) => return CapturePoll::End,
                    Err(e) => {
                        *failed = Some(CaptureError::Pcap(e));
                        return CapturePoll::End;
                    }
                },
                StreamInner::Ng(s) => match s.poll_packet() {
                    Ok(Polled::Packet(pkt)) => {
                        if pkt.link != LinkType::Radiotap {
                            *failed = Some(CaptureError::WrongLinkType(pkt.link));
                            return CapturePoll::End;
                        }
                        if let Some(r) = decode_packet(pkt.data, pkt.orig_len, frame_report) {
                            return CapturePoll::Record(r);
                        }
                    }
                    Ok(Polled::Pending) => return CapturePoll::Pending,
                    Ok(Polled::End) => return CapturePoll::End,
                    Err(e) => {
                        *failed = Some(CaptureError::Pcap(e));
                        return CapturePoll::End;
                    }
                },
            }
        }
    }
}

/// Outcome of a [`CaptureStream::poll_next`].
#[derive(Debug)]
pub enum CapturePoll {
    /// The next decoded record.
    Record(FrameRecord),
    /// The live source would block; poll again when it may have grown.
    Pending,
    /// End of stream (check [`CaptureStream::finish`] /
    /// [`CaptureStream::into_outcome`] for a hard error).
    End,
}

impl<R: Read> Iterator for CaptureStream<R> {
    type Item = FrameRecord;

    fn next(&mut self) -> Option<FrameRecord> {
        match self.poll_next() {
            CapturePoll::Record(r) => Some(r),
            CapturePoll::End => None,
            CapturePoll::Pending => {
                // Blocking iteration over a non-blocking source is a usage
                // error; surface it as the hard error it is.
                self.failed = Some(CaptureError::Pcap(PcapError::Io(
                    io::ErrorKind::WouldBlock.into(),
                )));
                None
            }
        }
    }
}

/// Reconstructs a full frame from a record for serialization. Payload
/// contents are zero-filled; every header field round-trips.
fn record_to_frame(r: &FrameRecord) -> wifi_frames::Frame {
    use wifi_frames::fc::FcFlags;
    use wifi_frames::frame::{self, Ack, Beacon, Cts, Data, Frame, Mgmt, Rts, SeqCtl};
    use wifi_frames::mac::MacAddr;
    use wifi_frames::FrameKind;

    let seq = SeqCtl::new(r.seq.unwrap_or(0), 0);
    match r.kind {
        FrameKind::Rts => Frame::Rts(Rts {
            duration: r.duration_us,
            receiver: r.dst,
            transmitter: r.src.unwrap_or(MacAddr::ZERO),
        }),
        FrameKind::Cts => Frame::Cts(Cts {
            duration: r.duration_us,
            receiver: r.dst,
        }),
        FrameKind::Ack => Frame::Ack(Ack {
            duration: r.duration_us,
            receiver: r.dst,
        }),
        FrameKind::Beacon => {
            Frame::Beacon(Beacon {
                duration: 0,
                dest: MacAddr::BROADCAST,
                source: r.src.unwrap_or(MacAddr::ZERO),
                bssid: r.bssid.unwrap_or(MacAddr::ZERO),
                seq,
                timestamp: r.timestamp_us,
                interval_tu: 100,
                capability: 0x0401,
                ssid: "x".repeat((r.mac_bytes as usize).saturating_sub(
                    frame::MGMT_OVERHEAD_BYTES + frame::BEACON_FIXED_BODY_BYTES + 11,
                )),
                channel: r.channel,
            })
        }
        FrameKind::Data | FrameKind::NullData => {
            let mut flags = FcFlags::default();
            flags.retry = r.retry;
            // Direction: to-DS when the destination is the BSSID.
            flags.to_ds = r.bssid == Some(r.dst);
            flags.from_ds = !flags.to_ds;
            Frame::Data(Data {
                flags,
                duration: r.duration_us,
                addr1: r.dst,
                addr2: r.src.unwrap_or(MacAddr::ZERO),
                addr3: r.bssid.unwrap_or(MacAddr::ZERO),
                seq,
                payload: vec![0u8; r.payload_bytes as usize],
                null: r.kind == FrameKind::NullData,
            })
        }
        kind => {
            let flags = FcFlags {
                retry: r.retry,
                ..FcFlags::default()
            };
            Frame::Mgmt(Mgmt {
                kind,
                flags,
                duration: r.duration_us,
                addr1: r.dst,
                addr2: r.src.unwrap_or(MacAddr::ZERO),
                addr3: r.bssid.unwrap_or(MacAddr::ZERO),
                seq,
                body: vec![0u8; (r.mac_bytes as usize).saturating_sub(frame::MGMT_OVERHEAD_BYTES)],
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_frames::phy::{Channel, Rate};
    use wifi_frames::FrameKind;
    use wifi_frames::MacAddr;

    fn sample_records() -> Vec<FrameRecord> {
        let mk = |ts: u64, kind, src: Option<u32>, dst: u32, payload: u32, rate| FrameRecord {
            timestamp_us: ts,
            kind,
            rate,
            channel: Channel::new(6).unwrap(),
            dst: MacAddr::from_id(dst),
            src: src.map(MacAddr::from_id),
            bssid: Some(MacAddr::from_id(99)),
            retry: false,
            seq: Some((ts % 4096) as u16),
            mac_bytes: payload + 28,
            payload_bytes: payload,
            signal_dbm: -62,
            duration_us: 314,
        };
        vec![
            mk(1_000, FrameKind::Data, Some(1), 99, 1472, Rate::R11),
            {
                let mut ack = mk(1_314, FrameKind::Ack, None, 1, 0, Rate::R1);
                ack.mac_bytes = 14;
                ack.payload_bytes = 0;
                ack.bssid = None;
                ack.duration_us = 0;
                ack.seq = None; // control frames carry no sequence number
                ack
            },
            mk(3_000, FrameKind::Data, Some(2), 99, 64, Rate::R5_5),
        ]
    }

    #[test]
    fn roundtrip_untruncated() {
        let dir = std::env::temp_dir().join("congestion_trace_test_full");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("full.pcap");
        let records = sample_records();
        let n = write_capture_with_snaplen(&path, &records, 0).unwrap();
        assert_eq!(n, 3);
        let back = read_capture(&path).unwrap();
        assert_eq!(back.len(), records.len());
        for (a, b) in back.iter().zip(&records) {
            assert_eq!(a.timestamp_us, b.timestamp_us);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.rate, b.rate);
            assert_eq!(a.mac_bytes, b.mac_bytes);
            assert_eq!(a.payload_bytes, b.payload_bytes);
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.seq, b.seq);
        }
    }

    #[test]
    fn roundtrip_with_study_snaplen() {
        let dir = std::env::temp_dir().join("congestion_trace_test_snap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.pcap");
        let records = sample_records();
        write_capture(&path, &records).unwrap();
        let back = read_capture(&path).unwrap();
        assert_eq!(back.len(), records.len());
        // The 1500-byte frame was truncated on disk, yet its sizes survive
        // via the original-length field.
        assert_eq!(back[0].mac_bytes, 1500);
        assert_eq!(back[0].payload_bytes, 1472);
        assert_eq!(back[0].rate, Rate::R11);
    }

    #[test]
    fn analysis_agrees_before_and_after_roundtrip() {
        let dir = std::env::temp_dir().join("congestion_trace_test_agree");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("agree.pcap");
        let records = sample_records();
        write_capture(&path, &records).unwrap();
        let back = read_capture(&path).unwrap();
        let a = congestion::analyze(&records);
        let b = congestion::analyze(&back);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.busy_us, y.busy_us, "CBT must survive the roundtrip");
            assert_eq!(x.acked_data, y.acked_data);
            assert_eq!(x.throughput_bits, y.throughput_bits);
        }
    }

    #[test]
    fn lossy_matches_strict_on_clean_capture() {
        let dir = std::env::temp_dir().join("congestion_trace_test_lossy_clean");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.pcap");
        let records = sample_records();
        write_capture(&path, &records).unwrap();
        let strict = read_capture(&path).unwrap();
        let lossy = read_capture_lossy(&path).unwrap();
        assert_eq!(lossy.records, strict);
        assert!(lossy.report.is_clean(), "clean file: {:?}", lossy.report);
    }

    #[test]
    fn lossy_recovers_after_mid_file_damage() {
        let records: Vec<FrameRecord> = (0..40u64)
            .map(|i| {
                let mut r = sample_records()[0];
                r.timestamp_us = i * 1_000;
                r.seq = Some(i as u16);
                r
            })
            .collect();
        let dir = std::env::temp_dir().join("congestion_trace_test_lossy_dmg");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("damaged.pcap");
        write_capture(&path, &records).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Walk to the 20th record header and blast its caplen so the strict
        // reader dies but the lossy one resynchronizes on the next record.
        let mut off = 24;
        for _ in 0..20 {
            let caplen = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap());
            off += 16 + caplen as usize;
        }
        bytes[off + 8..off + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_capture(&path).is_err(), "strict must reject the blast");
        let lossy = read_capture_lossy(&path).unwrap();
        assert!(lossy.report.resyncs >= 1);
        assert!(
            lossy.records.len() >= records.len() - 2,
            "recovered only {} of {} records",
            lossy.records.len(),
            records.len()
        );
    }

    #[test]
    fn undersized_orig_len_saturates_instead_of_underflowing() {
        // A record can *claim* an original length smaller than the radiotap
        // header it carries. No `wifi_pcap` reader produces one (they all
        // enforce `orig_len >= caplen`), but the decode layer must not rely
        // on that: the old strict-path formula `orig_len - radiotap_len`
        // would debug-panic / release-wrap here.
        let records = sample_records();
        let meta = CaptureMeta {
            tsft_us: records[0].timestamp_us,
            flags: FLAG_FCS_AT_END,
            rate: records[0].rate,
            channel: records[0].channel,
            signal_dbm: records[0].signal_dbm,
            noise_dbm: -95,
            antenna: 0,
        };
        let packet = radiotap::encode_packet(&meta, &wire::encode(&record_to_frame(&records[0])));
        let mut report = IngestReport::default();
        let rec = decode_packet(&packet, 3, &mut report).expect("frame itself is decodable");
        assert_eq!(rec.mac_bytes, 0, "claimed length saturates to zero");
        assert_eq!(rec.payload_bytes, 0);
        assert_eq!(report, IngestReport::default());
    }

    #[test]
    fn capture_stream_matches_batch_lossy_read() {
        let records: Vec<FrameRecord> = (0..60u64)
            .map(|i| {
                let mut r = sample_records()[0];
                r.timestamp_us = i * 700;
                r.seq = Some(i as u16);
                r
            })
            .collect();
        let dir = std::env::temp_dir().join("congestion_trace_test_stream");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.pcap");
        write_capture(&path, &records).unwrap();
        let batch = read_capture_lossy(&path).unwrap();
        let mut stream = CaptureStream::open(&path).unwrap();
        let streamed: Vec<FrameRecord> = stream.by_ref().collect();
        assert_eq!(streamed, batch.records);
        assert_eq!(stream.finish().unwrap(), batch.report);
    }

    #[test]
    fn wrong_link_type_rejected() {
        let dir = std::env::temp_dir().join("congestion_trace_test_lt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("eth.pcap");
        wifi_pcap::write_file(&path, LinkType::Ethernet, 0, vec![(0u64, &[0u8; 14][..])]).unwrap();
        assert!(matches!(
            read_capture(&path),
            Err(CaptureError::WrongLinkType(LinkType::Ethernet))
        ));
    }
}
