//! # ietf80211-congestion
//!
//! A full reproduction of *Understanding Congestion in IEEE 802.11b
//! Wireless Networks* (Jardosh, Ramachandran, Almeroth, Belding-Royer;
//! IMC 2005) as a Rust workspace:
//!
//! * [`congestion`] — the paper's contribution: the channel busy-time
//!   metric, utilization, throughput/goodput, congestion classification,
//!   the unrecorded-frame estimator, and every per-figure analysis;
//! * [`wifi_sim`] — a discrete-event IEEE 802.11b DCF simulator standing in
//!   for the live IETF-62 network (CSMA/CA, RTS/CTS, rate adaptation,
//!   fading, association, vicinity sniffers);
//! * [`wifi_frames`] — 802.11 frames, wire format, radiotap, and timing;
//! * [`wifi_pcap`] — a from-scratch classic-pcap reader/writer;
//! * [`ietf_workloads`] — the day-session, plenary-session and load-ramp
//!   scenarios.
//!
//! The [`trace`] module glues the layers: export a simulated capture to a
//! pcap file exactly as a 2005 sniffer would have written it (radiotap
//! link type, 250-byte snaplen), and re-ingest any such file back into
//! [`wifi_frames::FrameRecord`]s for analysis.
//!
//! ```no_run
//! use ietf80211_congestion::prelude::*;
//!
//! let scenario = ietf_workloads::load_ramp(7, 100, 60, 2.0);
//! let result = scenario.run();
//! let stats = congestion::analyze(&result.traces[0]);
//! let bins = congestion::UtilizationBins::build(&stats);
//! println!("utilization mode: {:?}", bins.mode());
//! ```

#![warn(missing_docs)]

pub use congestion;
pub use ietf_workloads;
pub use wifi_frames;
pub use wifi_pcap;
pub use wifi_sim;

pub mod ingest;
pub mod serve;
pub mod trace;

/// Convenient glob-import surface for examples and quick scripts.
pub mod prelude {
    pub use congestion::{
        analyze, cbt_us, estimate_unrecorded, CongestionClassifier, CongestionLevel,
        UtilizationBins,
    };
    pub use ietf_workloads::{ietf_day, ietf_plenary, load_ramp, Scenario, SessionScale};
    pub use wifi_frames::{FrameKind, FrameRecord, MacAddr, Rate};
    pub use wifi_sim::{ClientConfig, SimConfig, Simulator};

    pub use crate::ingest::{
        analyze_capture_streams, render_analysis, SourceOutcome, StreamAnalysis,
    };
    pub use crate::serve::{run_serve, ServeConfig};
    pub use crate::trace::{
        read_capture, read_capture_lossy, write_capture, CaptureStream, LossyCapture,
    };
}
