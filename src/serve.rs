//! `wifi-congestion serve` — a resident multi-sniffer ingestion service.
//!
//! Tails N live (growing, possibly rotating) pcap/pcapng capture files,
//! decodes each on its own thread, merges the streams online with the same
//! dedup window as the batch path, and classifies channel congestion per
//! second as the data arrives — all in O(merge window) memory. Operational
//! state is exposed as JSON over a unix socket and as a periodic stderr
//! heartbeat.
//!
//! ## Threading
//!
//! ```text
//!   tail+decode #0 ──batch channel──┐
//!   tail+decode #1 ──batch channel──┼──▶ merge loop ──▶ SecondAccumulator
//!   tail+decode #k ──batch channel──┘        │
//!                                            ├──▶ status JSON (Mutex)
//!   unix-socket listener ◀────────reads──────┘
//! ```
//!
//! Each source runs `TailSource` (poll-based follow with rotation
//! detection) under a [`CaptureStream`]; [`CapturePoll::Pending`] flushes
//! the partial batch and sleeps one poll interval, so records reach the
//! merge with at most one poll interval of added latency. The merge loop
//! drains the channels into an [`OnlineMerge`] and feeds emitted records to
//! the per-second accumulator.
//!
//! ## Degradation, not death
//!
//! A source that stalls, rotates, or turns to garbage degrades only itself:
//!
//! * byte-level damage is resynchronized and skip-counted exactly as in
//!   batch ingestion (the decode decisions on a growing file are *monotone*:
//!   the service's final output is byte-identical to a batch run over the
//!   final bytes);
//! * a stalled source holds the merge back by at most the skew horizon,
//!   after which the merge advances without it (it shows as `lagging` in the
//!   status; records it delivers late are dropped and counted);
//! * a hard failure (unreadable file, wrong link type, decoder panic) marks
//!   that source `failed` with its error in the status, and the remaining
//!   sources keep the service running.

use crate::ingest::{
    panic_if_injected, panic_message, SourceOutcome, StreamAnalysis, BATCH_LEN, CHANNEL_BATCHES,
};
use crate::trace::{CaptureError, CapturePoll, CaptureStream};
use congestion::merge::{MergePoll, OnlineMerge};
use congestion::persec::{SecondAccumulator, SecondStats};
use congestion::{CongestionClassifier, CongestionLevel, UtilizationBins};
use std::io::{Read, Write};
use std::os::unix::fs::MetadataExt;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wifi_frames::record::FrameRecord;
use wifi_pcap::IngestReport;
use wifi_sim::spsc::{batch_channel, BatchSender, TryRecv};

/// How often the merge loop refreshes the published status JSON.
const STATUS_INTERVAL: Duration = Duration::from_millis(200);

/// Configuration for [`run_serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Capture files to tail, one decode thread each.
    pub paths: Vec<PathBuf>,
    /// Unix socket path for the status endpoint; `None` disables it.
    pub socket: Option<PathBuf>,
    /// Poll interval for source growth and merge idling, milliseconds.
    pub poll_ms: u64,
    /// Skew horizon in trace µs: the merge advances past a source whose
    /// newest record is this far behind the merge candidate. `None` never
    /// skips (a stalled source then holds the merge until it ends).
    pub skew_horizon_us: Option<u64>,
    /// Wall-clock stall timeout: a source that delivers nothing for this
    /// long while the merge waits on it is deferred (the merge advances
    /// without it; it rejoins on its next record, older-than-watermark
    /// records dropped and counted). `None` never defers — the merge then
    /// waits on a stalled source until it ends.
    pub stall_timeout_ms: Option<u64>,
    /// Seconds between stderr heartbeat lines; 0 disables the heartbeat.
    pub heartbeat_s: u64,
    /// Stop (as if `shutdown` had been received) after this many wall-clock
    /// seconds. `None` runs until told to stop.
    pub max_duration_s: Option<u64>,
}

impl ServeConfig {
    /// Defaults: 50 ms poll, 2 s skew horizon, 1 s stall timeout, 10 s
    /// heartbeat, no socket, no deadline.
    pub fn new(paths: Vec<PathBuf>) -> ServeConfig {
        ServeConfig {
            paths,
            socket: None,
            poll_ms: 50,
            skew_horizon_us: Some(2_000_000),
            stall_timeout_ms: Some(1_000),
            heartbeat_s: 10,
            max_duration_s: None,
        }
    }
}

/// Lifecycle of one tailed source, as published in the status JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum SourceState {
    /// Waiting for the file to appear / produce a capture header.
    Starting = 0,
    /// Decoding; file is being followed.
    Live = 1,
    /// Reached end-of-stream after a stop request.
    Done = 2,
    /// Hard error or panic; see the source's `error` field.
    Failed = 3,
}

impl SourceState {
    fn from_u8(v: u8) -> SourceState {
        match v {
            0 => SourceState::Starting,
            1 => SourceState::Live,
            2 => SourceState::Done,
            _ => SourceState::Failed,
        }
    }

    fn name(self) -> &'static str {
        match self {
            SourceState::Starting => "starting",
            SourceState::Live => "live",
            SourceState::Done => "done",
            SourceState::Failed => "failed",
        }
    }
}

/// Shared per-source telemetry, written by the decode thread and its
/// [`TailSource`], read by the merge loop when rendering status.
struct SourceShared {
    path: PathBuf,
    state: AtomicU8,
    rotations: AtomicU64,
    report: Mutex<IngestReport>,
    error: Mutex<Option<String>>,
}

impl SourceShared {
    fn new(path: &Path) -> SourceShared {
        SourceShared {
            path: path.to_path_buf(),
            state: AtomicU8::new(SourceState::Starting as u8),
            rotations: AtomicU64::new(0),
            report: Mutex::new(IngestReport::default()),
            error: Mutex::new(None),
        }
    }

    fn set_state(&self, s: SourceState) {
        self.state.store(s as u8, Ordering::Release);
    }

    fn state(&self) -> SourceState {
        SourceState::from_u8(self.state.load(Ordering::Acquire))
    }

    fn publish_report(&self, report: IngestReport) {
        *self.report.lock().unwrap_or_else(|p| p.into_inner()) = report;
    }
}

/// Everything the service threads share.
struct Shared {
    /// Graceful-stop request: sources drain to their current EOF and end.
    stop: AtomicBool,
    /// Set by the merge loop once everything has drained; tells the socket
    /// listener to exit.
    done: AtomicBool,
    sources: Vec<SourceShared>,
    /// Last rendered status JSON (the socket replies with this verbatim).
    status_json: Mutex<String>,
    /// Seconds whose statistics can no longer change (every folded second
    /// except the newest), appended as the merge watermark passes them.
    final_seconds: Mutex<Vec<SecondStats>>,
}

/// A poll-based `Read` over a live capture file.
///
/// Reads return `WouldBlock` (never `Ok(0)`) while the file has no new
/// bytes, so the lossy decoders treat the source as pending rather than
/// ended. At EOF the path is re-checked: a changed inode or a size below
/// the consumed offset means the file was rotated, and the tail reopens
/// from the start of the replacement. Only after a stop request does EOF
/// become a real end-of-stream.
struct TailSource {
    shared: Arc<Shared>,
    idx: usize,
    file: Option<std::fs::File>,
    ino: u64,
    /// Bytes consumed from the currently open file.
    offset: u64,
}

impl TailSource {
    fn new(shared: Arc<Shared>, idx: usize) -> TailSource {
        TailSource {
            shared,
            idx,
            file: None,
            ino: 0,
            offset: 0,
        }
    }

    fn path(&self) -> &Path {
        &self.shared.sources[self.idx].path
    }

    fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    fn open_current(&mut self) -> std::io::Result<()> {
        let file = std::fs::File::open(self.path())?;
        self.ino = file.metadata()?.ino();
        self.offset = 0;
        self.file = Some(file);
        Ok(())
    }

    /// At EOF of the open file: has the path been replaced or truncated?
    fn rotated(&self) -> bool {
        match std::fs::metadata(self.path()) {
            Ok(meta) => meta.ino() != self.ino || meta.len() < self.offset,
            // Mid-rotation the path may briefly not exist; treat as not yet
            // rotated and let the next poll decide.
            Err(_) => false,
        }
    }

    fn would_block() -> std::io::Error {
        std::io::ErrorKind::WouldBlock.into()
    }
}

impl Read for TailSource {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.file.is_none() && self.open_current().is_err() {
            // Not there yet: pending until it appears, EOF once stopping.
            return if self.stopping() {
                Ok(0)
            } else {
                Err(Self::would_block())
            };
        }
        let n = self.file.as_mut().expect("opened above").read(buf)?;
        if n > 0 {
            self.offset += n as u64;
            return Ok(n);
        }
        // EOF of the open file. The old descriptor stays readable through a
        // rotation, so everything written before the swap has been consumed
        // by the time we get here — switching now loses nothing.
        if self.rotated() && self.open_current().is_ok() {
            self.shared.sources[self.idx]
                .rotations
                .fetch_add(1, Ordering::Relaxed);
            let n = self.file.as_mut().expect("reopened above").read(buf)?;
            self.offset += n as u64;
            if n > 0 {
                return Ok(n);
            }
        }
        if self.stopping() {
            Ok(0)
        } else {
            Err(Self::would_block())
        }
    }
}

/// Tails and decodes one source into `tx` until end-of-stream (which, for a
/// healthy source, only a stop request produces). Panics and hard errors
/// degrade into the returned outcome; siblings never notice.
fn serve_source(
    shared: &Arc<Shared>,
    idx: usize,
    mut tx: BatchSender<FrameRecord>,
    poll: Duration,
) -> SourceOutcome {
    let src = &shared.sources[idx];
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        panic_if_injected(&src.path);
        let tail = TailSource::new(Arc::clone(shared), idx);
        // Blocks (politely, via the WouldBlock retry in the header peek)
        // until the file yields a capture header or stop turns EOF real.
        let mut stream = match CaptureStream::from_reader(tail) {
            Ok(s) => s,
            Err(e) => {
                return SourceOutcome {
                    report: IngestReport::default(),
                    error: Some(e),
                }
            }
        };
        src.set_state(SourceState::Live);
        let mut delivered = stream.report();
        loop {
            match stream.poll_next() {
                CapturePoll::Record(r) => {
                    if tx.push(r).is_err() {
                        return SourceOutcome {
                            report: delivered,
                            error: None,
                        };
                    }
                    if tx.is_empty() {
                        delivered = stream.report();
                        src.publish_report(delivered);
                    }
                }
                CapturePoll::Pending => {
                    // Ship the partial batch so the merge sees everything
                    // decoded so far, then wait for the file to grow.
                    if tx.flush().is_err() {
                        return SourceOutcome {
                            report: delivered,
                            error: None,
                        };
                    }
                    delivered = stream.report();
                    src.publish_report(delivered);
                    std::thread::sleep(poll);
                }
                CapturePoll::End => break,
            }
        }
        let (report, error) = stream.into_outcome();
        match tx.flush() {
            Ok(()) => SourceOutcome { report, error },
            Err(_) => SourceOutcome {
                report: delivered,
                error,
            },
        }
    }));
    let outcome = match result {
        Ok(outcome) => outcome,
        Err(payload) => SourceOutcome {
            report: IngestReport::default(),
            error: Some(CaptureError::Panicked(panic_message(payload))),
        },
    };
    src.publish_report(outcome.report);
    match &outcome.error {
        Some(e) => {
            *src.error.lock().unwrap_or_else(|p| p.into_inner()) = Some(e.to_string());
            src.set_state(SourceState::Failed);
        }
        None => src.set_state(SourceState::Done),
    }
    outcome
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the small status document the socket serves for `status`.
#[allow(clippy::too_many_arguments)]
fn render_status(
    shared: &Shared,
    core: &OnlineMerge,
    queue_depths: &[usize],
    merged: u64,
    analyzed_seconds: usize,
    last_second: Option<(&SecondStats, CongestionLevel)>,
    uptime: Duration,
    horizon: Option<u64>,
) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"uptime_s\":{:.1},\"merged_records\":{merged},\"watermark_us\":{},\"analyzed_seconds\":{analyzed_seconds}",
        uptime.as_secs_f64(),
        core.watermark(),
    );
    match last_second {
        Some((s, class)) => {
            let _ = write!(
                out,
                ",\"last_second\":{{\"second\":{},\"utilization_pct\":{:.2},\"class\":\"{:?}\"}}",
                s.second,
                s.utilization_pct(),
                class
            );
        }
        None => out.push_str(",\"last_second\":null"),
    }
    out.push_str(",\"sources\":[");
    for (idx, src) in shared.sources.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        let state = src.state();
        let lag = core.lag_us(idx);
        // A live source the merge has moved on from — deferred by the stall
        // policy, or more than one horizon behind the frontier — surfaces
        // as `lagging`.
        let lagging = state == SourceState::Live
            && (core.is_deferred(idx) || horizon.is_some_and(|h| lag > h));
        let state_name = if lagging { "lagging" } else { state.name() };
        let report = src.report.lock().unwrap_or_else(|p| p.into_inner());
        let error = src.error.lock().unwrap_or_else(|p| p.into_inner());
        let _ = write!(
            out,
            "{{\"path\":\"{}\",\"state\":\"{state_name}\",\"lag_us\":{lag},\"queued_batches\":{},\
             \"received\":{},\"contributed\":{},\"clamped\":{},\"late_dropped\":{},\"rotations\":{},\
             \"report\":{},\"error\":{}}}",
            json_escape(&src.path.display().to_string()),
            queue_depths[idx],
            core.received()[idx],
            core.contributed()[idx],
            core.clamped()[idx],
            core.late_dropped()[idx],
            src.rotations.load(Ordering::Relaxed),
            report.to_json(),
            match error.as_deref() {
                Some(e) => format!("\"{}\"", json_escape(e)),
                None => "null".to_string(),
            },
        );
    }
    out.push_str("]}");
    out
}

/// Renders the `seconds` document: every finalized second with its
/// utilization and congestion class (thresholds fitted to the data seen so
/// far, as in batch analysis).
fn render_seconds(seconds: &[SecondStats]) -> String {
    use std::fmt::Write;
    if seconds.is_empty() {
        return "[]".to_string();
    }
    let bins = UtilizationBins::build(seconds);
    let classifier = CongestionClassifier::from_measurements(&bins);
    let mut out = String::with_capacity(seconds.len() * 48 + 2);
    out.push('[');
    for (i, s) in seconds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"second\":{},\"utilization_pct\":{:.2},\"class\":\"{:?}\"}}",
            s.second,
            s.utilization_pct(),
            classifier.classify(s.utilization_pct()),
        );
    }
    out.push(']');
    out
}

/// Serves `status` / `seconds` / `shutdown` requests (one line per
/// connection) until the service reports done.
fn socket_loop(listener: UnixListener, shared: &Shared) {
    let _ = listener.set_nonblocking(true);
    while !shared.done.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => handle_client(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn handle_client(mut stream: UnixStream, shared: &Shared) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 256];
    let mut req = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.contains(&b'\n') || req.len() >= buf.len() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let line = String::from_utf8_lossy(&req);
    let reply = match line.trim() {
        "status" | "" => shared
            .status_json
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone(),
        "seconds" => {
            let seconds = shared
                .final_seconds
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            render_seconds(&seconds)
        }
        "shutdown" => {
            shared.stop.store(true, Ordering::Release);
            "{\"stopping\":true}".to_string()
        }
        other => format!("{{\"error\":\"unknown command {}\"}}", json_escape(other)),
    };
    let _ = stream.write_all(reply.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// Runs the resident ingestion service until a stop request (socket
/// `shutdown` or [`ServeConfig::max_duration_s`]) drains it, then returns
/// the same [`StreamAnalysis`] a batch run over the final bytes would
/// produce.
pub fn run_serve(cfg: &ServeConfig) -> Result<StreamAnalysis, CaptureError> {
    let n = cfg.paths.len();
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        done: AtomicBool::new(false),
        sources: cfg.paths.iter().map(|p| SourceShared::new(p)).collect(),
        status_json: Mutex::new("{}".to_string()),
        final_seconds: Mutex::new(Vec::new()),
    });
    let listener = match &cfg.socket {
        Some(path) => {
            // A stale socket file from a previous run refuses the bind.
            let _ = std::fs::remove_file(path);
            Some(UnixListener::bind(path).map_err(wifi_pcap::PcapError::Io)?)
        }
        None => None,
    };
    let poll = Duration::from_millis(cfg.poll_ms.max(1));
    let horizon = cfg.skew_horizon_us;

    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = batch_channel::<FrameRecord>(CHANNEL_BATCHES, BATCH_LEN);
        senders.push(Some(tx));
        receivers.push(rx);
    }

    let started = Instant::now();
    let deadline = cfg.max_duration_s.map(|s| started + Duration::from_secs(s));

    let analysis = std::thread::scope(|scope| {
        let workers: Vec<_> = senders
            .iter_mut()
            .enumerate()
            .map(|(idx, tx)| {
                let tx = tx.take().expect("each sender moves to one worker");
                let shared = Arc::clone(&shared);
                scope.spawn(move || serve_source(&shared, idx, tx, poll))
            })
            .collect();
        if let Some(listener) = listener {
            let shared = Arc::clone(&shared);
            scope.spawn(move || socket_loop(listener, &shared));
        }

        let mut acc = SecondAccumulator::new();
        let mut core = OnlineMerge::new(n);
        let mut merged = 0u64;
        let mut published_seconds = 0usize;
        let mut last_status = Instant::now() - STATUS_INTERVAL;
        let mut last_heartbeat = Instant::now();
        let stall = cfg.stall_timeout_ms.map(Duration::from_millis);
        let mut last_progress = vec![Instant::now(); n];
        let mut ended = vec![false; n];
        loop {
            let mut progressed = false;
            // Deferred (stalled-out) sources rejoin as soon as they produce;
            // the merge never returns Need for them, so drain them here.
            for idx in 0..n {
                if !core.is_deferred(idx) {
                    continue;
                }
                match receivers[idx].try_next() {
                    TryRecv::Item(r) => {
                        core.offer(idx, r);
                        last_progress[idx] = Instant::now();
                        progressed = true;
                    }
                    TryRecv::Empty => {}
                    TryRecv::Disconnected => {
                        core.end(idx);
                        ended[idx] = true;
                        progressed = true;
                    }
                }
            }
            let mut all_done = false;
            loop {
                match core.poll(horizon) {
                    MergePoll::Record(r) => {
                        merged += 1;
                        acc.push(r);
                        progressed = true;
                    }
                    MergePoll::Need(idx) => match receivers[idx].try_next() {
                        TryRecv::Item(r) => {
                            core.offer(idx, r);
                            last_progress[idx] = Instant::now();
                            progressed = true;
                        }
                        TryRecv::Empty => {
                            // Nothing buffered: wall-clock stall policy. A
                            // source quiet past the timeout stops blocking
                            // the merge (trace-time horizons cannot unwedge
                            // a source stalled at the merge frontier).
                            let timed_out =
                                stall.is_some_and(|t| last_progress[idx].elapsed() >= t);
                            if timed_out && core.defer(idx) {
                                continue;
                            }
                            break;
                        }
                        TryRecv::Disconnected => {
                            core.end(idx);
                            ended[idx] = true;
                            progressed = true;
                        }
                    },
                    MergePoll::Done => {
                        // Final only when every source has truly ended;
                        // otherwise deferred sources may still rejoin.
                        all_done = ended.iter().all(|&e| e);
                        break;
                    }
                }
            }

            if let Some(d) = deadline {
                if Instant::now() >= d {
                    shared.stop.store(true, Ordering::Release);
                }
            }
            if all_done || last_status.elapsed() >= STATUS_INTERVAL {
                last_status = Instant::now();
                // Publish newly finalized seconds (all folded seconds except
                // the newest, which later records can still extend).
                let folded = acc.seconds();
                let finalized = folded.len().saturating_sub(1);
                if finalized > published_seconds {
                    let mut out = shared
                        .final_seconds
                        .lock()
                        .unwrap_or_else(|p| p.into_inner());
                    out.extend_from_slice(&folded[published_seconds..finalized]);
                    published_seconds = finalized;
                }
                let last = folded.len().checked_sub(2).map(|i| &folded[i]);
                let classified = last.map(|s| {
                    let bins = UtilizationBins::build(&folded[..finalized]);
                    let classifier = CongestionClassifier::from_measurements(&bins);
                    (s, classifier.classify(s.utilization_pct()))
                });
                let depths: Vec<usize> = receivers.iter().map(|rx| rx.queued_batches()).collect();
                let status = render_status(
                    &shared,
                    &core,
                    &depths,
                    merged,
                    finalized,
                    classified,
                    started.elapsed(),
                    horizon,
                );
                *shared.status_json.lock().unwrap_or_else(|p| p.into_inner()) = status;
            }
            if cfg.heartbeat_s > 0
                && last_heartbeat.elapsed() >= Duration::from_secs(cfg.heartbeat_s)
            {
                last_heartbeat = Instant::now();
                let states: Vec<&str> = shared.sources.iter().map(|s| s.state().name()).collect();
                eprintln!(
                    "serve: up {:.0}s, merged {merged} records, watermark {}µs, sources [{}]",
                    started.elapsed().as_secs_f64(),
                    core.watermark(),
                    states.join(", ")
                );
            }
            if all_done {
                break;
            }
            if !progressed {
                std::thread::sleep(poll);
            }
        }

        let sources: Vec<SourceOutcome> = workers
            .into_iter()
            .map(|w| {
                w.join().unwrap_or_else(|payload| SourceOutcome {
                    report: IngestReport::default(),
                    error: Some(CaptureError::Panicked(panic_message(payload))),
                })
            })
            .collect();
        let per_second = acc.finish();
        {
            let mut out = shared
                .final_seconds
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            out.clear();
            out.extend_from_slice(&per_second);
        }
        shared.done.store(true, Ordering::Release);
        StreamAnalysis {
            per_second,
            contributed: core.contributed().to_vec(),
            merged_records: merged,
            sources,
        }
    });

    if let Some(path) = &cfg.socket {
        let _ = std::fs::remove_file(path);
    }
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::write_capture;
    use wifi_frames::phy::{Channel, Rate};
    use wifi_frames::{FrameKind, MacAddr};

    fn rec(ts: u64, src: u32, seq: u16) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts,
            kind: FrameKind::Data,
            rate: Rate::R11,
            channel: Channel::new(6).unwrap(),
            dst: MacAddr::from_id(99),
            src: Some(MacAddr::from_id(src)),
            bssid: Some(MacAddr::from_id(99)),
            retry: false,
            seq: Some(seq),
            mac_bytes: 1028,
            payload_bytes: 1000,
            signal_dbm: -62,
            duration_us: 314,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("congestion_serve_unit_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tail_source_blocks_then_reads_then_detects_rotation() {
        let dir = temp_dir("tail");
        let path = dir.join("live.pcap");
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            done: AtomicBool::new(false),
            sources: vec![SourceShared::new(&path)],
            status_json: Mutex::new(String::new()),
            final_seconds: Mutex::new(Vec::new()),
        });
        let mut tail = TailSource::new(Arc::clone(&shared), 0);
        let mut buf = [0u8; 64];

        // No file yet: pending, not EOF.
        let err = tail.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);

        std::fs::write(&path, b"first").unwrap();
        assert_eq!(tail.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"first");
        // Caught up: pending again.
        assert_eq!(
            tail.read(&mut buf).unwrap_err().kind(),
            std::io::ErrorKind::WouldBlock
        );

        // Rotate: replace the file (new inode) with fresh content.
        std::fs::remove_file(&path).unwrap();
        std::fs::write(&path, b"second!").unwrap();
        assert_eq!(tail.read(&mut buf).unwrap(), 7);
        assert_eq!(&buf[..7], b"second!");
        assert_eq!(shared.sources[0].rotations.load(Ordering::Relaxed), 1);

        // Stop turns EOF real.
        shared.stop.store(true, Ordering::Release);
        assert_eq!(tail.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn serve_on_static_files_matches_batch_analysis() {
        let dir = temp_dir("static");
        let full: Vec<FrameRecord> = (0..1500u64)
            .map(|i| rec(i * 900, 1, (i % 4096) as u16))
            .collect();
        let mut paths = Vec::new();
        for s in 0..2 {
            let records: Vec<FrameRecord> = full
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 != s)
                .map(|(_, r)| *r)
                .collect();
            let path = dir.join(format!("sniffer_{s}.pcap"));
            write_capture(&path, &records).unwrap();
            paths.push(path);
        }
        let mut cfg = ServeConfig::new(paths.clone());
        cfg.poll_ms = 5;
        cfg.heartbeat_s = 0;
        cfg.stall_timeout_ms = None;
        cfg.max_duration_s = Some(1);
        let served = run_serve(&cfg).unwrap();
        assert!(served.sources.iter().all(|s| s.is_clean()));

        let batch = crate::ingest::analyze_capture_streams(&paths).unwrap();
        assert_eq!(served.merged_records, batch.merged_records);
        assert_eq!(served.per_second, batch.per_second);
        assert_eq!(served.contributed, batch.contributed);
    }

    #[test]
    fn status_json_is_wellformed_enough() {
        // Smoke the renderers directly: no commas-in-wrong-places panics,
        // balanced braces, expected keys.
        let shared = Shared {
            stop: AtomicBool::new(false),
            done: AtomicBool::new(false),
            sources: vec![SourceShared::new(Path::new("/tmp/a \"quoted\".pcap"))],
            status_json: Mutex::new(String::new()),
            final_seconds: Mutex::new(Vec::new()),
        };
        let core = OnlineMerge::new(1);
        let status = render_status(
            &shared,
            &core,
            &[0],
            0,
            0,
            None,
            Duration::from_secs(3),
            Some(2_000_000),
        );
        assert!(status.contains("\"sources\":["));
        assert!(status.contains("\\\"quoted\\\""));
        assert_eq!(
            status.matches('{').count(),
            status.matches('}').count(),
            "{status}"
        );
        assert_eq!(render_seconds(&[]), "[]");
    }
}
