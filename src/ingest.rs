//! Streaming multi-sniffer ingestion: decode N capture files concurrently,
//! merge them online, and feed the per-second analysis — file bytes to
//! congestion statistics in O(window) memory, never materializing a trace.
//!
//! The pipeline is one decode thread per sniffer file (each running a
//! [`CaptureStream`]), a bounded batch channel per sniffer for backpressure,
//! and the k-way [`MergeStream`] heap on the consuming side driving a
//! [`SecondAccumulator`]. A slow consumer therefore bounds every decoder's
//! lead to a few batches instead of a whole file; a capture larger than RAM
//! analyzes in constant memory.
//!
//! Deadlock freedom: `run_parallel` is given one thread per file, so every
//! producer makes progress independently, and the merge heap always drains
//! the stream whose head record is globally earliest — no producer waits on
//! another producer, and the consumer never waits on a stream that is not
//! being produced.

use crate::trace::{CaptureError, CaptureStream};
use congestion::merge::MergeStream;
use congestion::persec::{SecondAccumulator, SecondStats};
use std::path::PathBuf;
use std::sync::Mutex;
use wifi_frames::record::FrameRecord;
use wifi_pcap::IngestReport;
use wifi_sim::runner::run_parallel;
use wifi_sim::spsc::{batch_channel, BatchReceiver, BatchSender};

/// Records per cross-thread batch: large enough that the channel mutex is
/// cold (one lock per 256 records), small enough to stay cache-resident.
const BATCH_LEN: usize = 256;

/// Full batches in flight per sniffer before its decoder blocks — the
/// backpressure bound (~2k records, a few hundred KiB per sniffer).
const CHANNEL_BATCHES: usize = 8;

/// The result of a streaming end-to-end analysis over one or more sniffer
/// captures of the same channel.
#[derive(Debug, Clone)]
pub struct StreamAnalysis {
    /// Per-second link-layer statistics of the merged trace.
    pub per_second: Vec<SecondStats>,
    /// Damage accounting per input file, in input order.
    pub reports: Vec<IngestReport>,
    /// Records in the merged, de-duplicated trace.
    pub merged_records: u64,
    /// Records each sniffer was the first to capture, in input order.
    pub contributed: Vec<u64>,
}

/// Streams `paths` (per-sniffer captures of one channel) through parallel
/// lossy decoding, the online k-way merge, and the per-second accumulator.
///
/// Equivalent to reading every file with
/// [`crate::trace::read_capture_lossy`], merging with
/// [`congestion::merge_traces`], and running [`congestion::analyze`] — but
/// in O(window) memory and with the decode work spread across one thread
/// per file. Hard errors (unreadable file, unrecognizable classic header,
/// non-radiotap link type) fail the whole analysis, exactly as the batch
/// path would.
pub fn analyze_capture_streams(paths: &[PathBuf]) -> Result<StreamAnalysis, CaptureError> {
    let mut senders = Vec::with_capacity(paths.len());
    let mut receivers: Vec<BatchReceiver<FrameRecord>> = Vec::with_capacity(paths.len());
    for _ in paths {
        let (tx, rx) = batch_channel(CHANNEL_BATCHES, BATCH_LEN);
        senders.push(Mutex::new(Some(tx)));
        receivers.push(rx);
    }
    let items: Vec<(PathBuf, Mutex<Option<BatchSender<FrameRecord>>>)> =
        paths.iter().cloned().zip(senders).collect();

    let (merged_records, contributed, per_second, reports) = std::thread::scope(|scope| {
        // One decode thread per file; `run_parallel` itself blocks, so it
        // runs on a scoped helper thread while this thread consumes.
        let decoder = scope.spawn(|| {
            run_parallel(&items, items.len(), |item| {
                let (path, slot) = item;
                let mut tx = slot
                    .lock()
                    .expect("sender slot lock poisoned")
                    .take()
                    .expect("run_parallel hands each item to exactly one worker");
                let mut stream = CaptureStream::open(path)?;
                for record in &mut stream {
                    if tx.push(record).is_err() {
                        // Consumer gone: the analysis is being abandoned.
                        break;
                    }
                }
                drop(tx); // flush the partial tail batch before reporting
                stream.finish()
            })
        });
        let mut acc = SecondAccumulator::new();
        let mut merge = MergeStream::new(receivers);
        let mut merged_records = 0u64;
        for record in &mut merge {
            merged_records += 1;
            acc.push(record);
        }
        let reports = decoder.join().expect("decoder thread panicked");
        (
            merged_records,
            merge.contributed().to_vec(),
            acc.finish(),
            reports,
        )
    });

    let reports = reports.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(StreamAnalysis {
        per_second,
        reports,
        merged_records,
        contributed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{read_capture_lossy, write_capture};
    use wifi_frames::phy::{Channel, Rate};
    use wifi_frames::{FrameKind, MacAddr};

    fn rec(ts: u64, src: u32, seq: u16) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts,
            kind: FrameKind::Data,
            rate: Rate::R11,
            channel: Channel::new(6).unwrap(),
            dst: MacAddr::from_id(99),
            src: Some(MacAddr::from_id(src)),
            bssid: Some(MacAddr::from_id(99)),
            retry: false,
            seq: Some(seq),
            mac_bytes: 1028,
            payload_bytes: 1000,
            signal_dbm: -62,
            duration_us: 314,
        }
    }

    fn write_sniffers(tag: &str, sniffers: &[Vec<FrameRecord>]) -> Vec<PathBuf> {
        let dir = std::env::temp_dir().join(format!("congestion_ingest_test_{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        sniffers
            .iter()
            .enumerate()
            .map(|(i, records)| {
                let path = dir.join(format!("sniffer_{i}.pcap"));
                write_capture(&path, records).unwrap();
                path
            })
            .collect()
    }

    #[test]
    fn streaming_pipeline_matches_batch_end_to_end() {
        // Three sniffers with complementary losses and a little clock skew.
        let full: Vec<FrameRecord> = (0..3000u64)
            .map(|i| rec(i * 900, 1, (i % 4096) as u16))
            .collect();
        let sniffers: Vec<Vec<FrameRecord>> = (0..3)
            .map(|s| {
                full.iter()
                    .enumerate()
                    .filter(|(i, _)| i % 3 != s)
                    .map(|(_, r)| {
                        let mut r = *r;
                        r.timestamp_us += 20 * s as u64; // per-sniffer skew
                        r
                    })
                    .collect()
            })
            .collect();
        let paths = write_sniffers("e2e", &sniffers);

        let streamed = analyze_capture_streams(&paths).unwrap();

        // Batch reference: lossy-read each file, merge, analyze.
        let batch: Vec<Vec<FrameRecord>> = paths
            .iter()
            .map(|p| read_capture_lossy(p).unwrap().records)
            .collect();
        let views: Vec<&[FrameRecord]> = batch.iter().map(|t| &t[..]).collect();
        let merged = congestion::merge_traces(&views);
        let expected = congestion::analyze(&merged);

        assert_eq!(streamed.merged_records as usize, merged.len());
        assert_eq!(streamed.per_second, expected);
        assert_eq!(streamed.reports.len(), 3);
        assert!(streamed.reports.iter().all(|r| r.is_clean()));
        assert_eq!(
            streamed.contributed.iter().sum::<u64>(),
            streamed.merged_records
        );
    }

    #[test]
    fn empty_input_set_yields_empty_analysis() {
        let out = analyze_capture_streams(&[]).unwrap();
        assert!(out.per_second.is_empty());
        assert_eq!(out.merged_records, 0);
        assert!(out.reports.is_empty());
    }

    #[test]
    fn missing_file_fails_the_analysis() {
        let paths = vec![PathBuf::from("/nonexistent/sniffer.pcap")];
        assert!(analyze_capture_streams(&paths).is_err());
    }
}
