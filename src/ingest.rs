//! Streaming multi-sniffer ingestion: decode N capture files concurrently,
//! merge them online, and feed the per-second analysis — file bytes to
//! congestion statistics in O(window) memory, never materializing a trace.
//!
//! The pipeline is one decode thread per sniffer file (each running a
//! [`CaptureStream`]), a bounded batch channel per sniffer for backpressure,
//! and the k-way [`MergeStream`] heap on the consuming side driving a
//! [`SecondAccumulator`]. A slow consumer therefore bounds every decoder's
//! lead to a few batches instead of a whole file; a capture larger than RAM
//! analyzes in constant memory.
//!
//! Deadlock freedom: `run_parallel` is given one thread per file, so every
//! producer makes progress independently, and the merge heap always drains
//! the stream whose head record is globally earliest — no producer waits on
//! another producer, and the consumer never waits on a stream that is not
//! being produced.
//!
//! Fault isolation: one bad capture — unreadable, wrong link type, or even
//! a decoder panic — degrades into that source's [`SourceOutcome::error`]
//! while its siblings analyze to completion. Nothing in this pipeline can
//! take the process down with it, which is what lets the resident
//! [`crate::serve`] mode reuse the same building blocks.

use crate::trace::{CaptureError, CaptureStream};
use congestion::merge::MergeStream;
use congestion::persec::{SecondAccumulator, SecondStats};
use congestion::{CongestionClassifier, CongestionLevel, UtilizationBins};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use wifi_frames::record::FrameRecord;
use wifi_pcap::IngestReport;
use wifi_sim::runner::run_parallel;
use wifi_sim::spsc::{batch_channel, BatchReceiver, BatchSender};

/// Records per cross-thread batch: large enough that the channel mutex is
/// cold (one lock per 256 records), small enough to stay cache-resident.
pub(crate) const BATCH_LEN: usize = 256;

/// Full batches in flight per sniffer before its decoder blocks — the
/// backpressure bound (~2k records, a few hundred KiB per sniffer).
pub(crate) const CHANNEL_BATCHES: usize = 8;

/// Environment variable naming a substring of a capture file name whose
/// decoder must panic before decoding — a deliberately crash-faulty sniffer
/// for regression tests of panic isolation (the readers themselves are
/// panic-free on arbitrary bytes, so a real decoder panic cannot be staged
/// from file contents). Unset in normal operation.
pub const PANIC_SOURCE_ENV: &str = "CONG_TEST_PANIC_SOURCE";

pub(crate) fn panic_if_injected(path: &Path) {
    if let Ok(pattern) = std::env::var(PANIC_SOURCE_ENV) {
        let hit = !pattern.is_empty()
            && path
                .file_name()
                .is_some_and(|n| n.to_string_lossy().contains(&pattern));
        if hit {
            panic!("injected decoder panic for {}", path.display());
        }
    }
}

/// Renders a panic payload for [`CaptureError::Panicked`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What ingesting one source produced: the damage accounting for the bytes
/// that were decoded *and delivered*, plus the hard error that stopped the
/// source early, if any.
#[derive(Debug)]
pub struct SourceOutcome {
    /// Skip accounting for the delivered records. Under early consumer
    /// termination this is the snapshot at the last delivered batch
    /// boundary, so the totals match what the consumer could observe.
    pub report: IngestReport,
    /// The hard error that ended this source, if it did not run to clean
    /// end-of-stream.
    pub error: Option<CaptureError>,
}

impl SourceOutcome {
    /// True when the source decoded end-to-end without damage or error.
    pub fn is_clean(&self) -> bool {
        self.error.is_none() && self.report.is_clean()
    }
}

/// The result of a streaming end-to-end analysis over one or more sniffer
/// captures of the same channel.
#[derive(Debug)]
pub struct StreamAnalysis {
    /// Per-second link-layer statistics of the merged trace.
    pub per_second: Vec<SecondStats>,
    /// Per-source accounting and error state, in input order.
    pub sources: Vec<SourceOutcome>,
    /// Records in the merged, de-duplicated trace.
    pub merged_records: u64,
    /// Records each sniffer was the first to capture, in input order.
    pub contributed: Vec<u64>,
}

impl StreamAnalysis {
    /// The source reports merged into one total — [`IngestReport`] is
    /// incrementally mergeable, so rolling per-source snapshots (as the
    /// serve status endpoint publishes) sum to exactly this.
    pub fn total_report(&self) -> IngestReport {
        let mut total = IngestReport::default();
        for s in &self.sources {
            total.merge(&s.report);
        }
        total
    }
}

/// Decodes one capture into `tx`, delivering records in batches. Total:
/// panics (including injected ones) and hard errors degrade into the
/// returned [`SourceOutcome`] instead of crossing thread boundaries.
fn decode_source(path: &Path, mut tx: BatchSender<FrameRecord>) -> SourceOutcome {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        panic_if_injected(path);
        let mut stream = match CaptureStream::open(path) {
            Ok(s) => s,
            Err(e) => {
                return SourceOutcome {
                    report: IngestReport::default(),
                    error: Some(e),
                }
            }
        };
        // Counters snapshotted only at delivered-batch boundaries
        // (`BatchSender::push` can fail only when a batch ships), so an
        // early consumer termination reports exactly the records the
        // consumer could observe — never the ones discarded with the
        // undeliverable batch.
        let mut delivered = stream.report();
        while let Some(record) = stream.next() {
            if tx.push(record).is_err() {
                return SourceOutcome {
                    report: delivered,
                    error: None,
                };
            }
            if tx.is_empty() {
                delivered = stream.report();
            }
        }
        let (report, error) = stream.into_outcome();
        match tx.flush() {
            Ok(()) => SourceOutcome { report, error },
            Err(_) => SourceOutcome {
                report: delivered,
                error,
            },
        }
    }));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => SourceOutcome {
            report: IngestReport::default(),
            error: Some(CaptureError::Panicked(panic_message(payload))),
        },
    }
}

/// Streams `paths` (per-sniffer captures of one channel) through parallel
/// lossy decoding, the online k-way merge, and the per-second accumulator.
///
/// Equivalent to reading every file with
/// [`crate::trace::read_capture_lossy`], merging with
/// [`congestion::merge_traces`], and running [`congestion::analyze`] — but
/// in O(window) memory and with the decode work spread across one thread
/// per file. A source that fails hard (unreadable file, unrecognizable
/// classic header, non-radiotap link type, decoder panic) contributes what
/// it decoded before failing and carries the error in its
/// [`SourceOutcome`]; sibling sources and the merged analysis complete
/// normally.
pub fn analyze_capture_streams(paths: &[PathBuf]) -> Result<StreamAnalysis, CaptureError> {
    let mut senders = Vec::with_capacity(paths.len());
    let mut receivers: Vec<BatchReceiver<FrameRecord>> = Vec::with_capacity(paths.len());
    for _ in paths {
        let (tx, rx) = batch_channel(CHANNEL_BATCHES, BATCH_LEN);
        senders.push(Mutex::new(Some(tx)));
        receivers.push(rx);
    }
    let items: Vec<(PathBuf, Mutex<Option<BatchSender<FrameRecord>>>)> =
        paths.iter().cloned().zip(senders).collect();

    let (merged_records, contributed, per_second, sources) = std::thread::scope(|scope| {
        // One decode thread per file; `run_parallel` itself blocks, so it
        // runs on a scoped helper thread while this thread consumes.
        let decoder = scope.spawn(|| {
            run_parallel(&items, items.len(), |item| {
                let (path, slot) = item;
                let tx = slot
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .take()
                    .expect("run_parallel hands each item to exactly one worker");
                decode_source(path, tx)
            })
        });
        let mut acc = SecondAccumulator::new();
        let mut merge = MergeStream::new(receivers);
        let mut merged_records = 0u64;
        for record in &mut merge {
            merged_records += 1;
            acc.push(record);
        }
        // Worker panics are caught inside `decode_source`; a join error here
        // means the dispatch infrastructure itself died, which no single
        // source should be able to cause — degrade every source rather than
        // poison the caller.
        let sources = decoder.join().unwrap_or_else(|payload| {
            let msg = panic_message(payload);
            items
                .iter()
                .map(|_| SourceOutcome {
                    report: IngestReport::default(),
                    error: Some(CaptureError::Panicked(msg.clone())),
                })
                .collect()
        });
        (
            merged_records,
            merge.contributed().to_vec(),
            acc.finish(),
            sources,
        )
    });

    Ok(StreamAnalysis {
        per_second,
        sources,
        merged_records,
        contributed,
    })
}

/// Renders the per-second analysis summary exactly as `wifi-congestion
/// analyze` prints it. Shared by the batch CLI and the serve final report so
/// the two outputs are byte-comparable.
pub fn render_analysis(stats: &[SecondStats], frames: u64) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    if stats.is_empty() {
        let _ = writeln!(out, "frames: {frames}");
        let _ = writeln!(out, "span: 0.0 s (0 analyzed seconds)");
        return out;
    }
    let bins = UtilizationBins::build(stats);
    let classifier = CongestionClassifier::from_measurements(&bins);
    let _ = writeln!(out, "frames: {frames}");
    let _ = writeln!(
        out,
        "span: {:.1} s ({} analyzed seconds)",
        (stats.last().unwrap().second - stats.first().unwrap().second + 1) as f64,
        stats.len()
    );
    let mut high = 0u64;
    let mut moderate = 0u64;
    let mut idle = 0u64;
    for s in stats {
        match classifier.classify(s.utilization_pct()) {
            CongestionLevel::High => high += 1,
            CongestionLevel::Moderate => moderate += 1,
            CongestionLevel::Uncongested => idle += 1,
        }
    }
    let _ = writeln!(
        out,
        "congestion: {idle} uncongested s, {moderate} moderate s, {high} high s \
         (thresholds {:.0}% / {:.0}%)",
        classifier.low_pct, classifier.high_pct
    );
    let _ = writeln!(out, "utilization mode: {:?}%", bins.mode());
    let total_thr: f64 = stats.iter().map(|s| s.throughput_mbps()).sum();
    let total_good: f64 = stats.iter().map(|s| s.goodput_mbps()).sum();
    let n = stats.len().max(1) as f64;
    let _ = writeln!(
        out,
        "mean throughput {:.2} Mbps, mean goodput {:.2} Mbps",
        total_thr / n,
        total_good / n
    );
    let _ = writeln!(out, "\nsec\tutil%\tthr\tgood\tdata/s\tretr/s");
    for s in stats.iter().take(30) {
        let _ = writeln!(
            out,
            "{}\t{:.1}\t{:.2}\t{:.2}\t{}\t{}",
            s.second,
            s.utilization_pct(),
            s.throughput_mbps(),
            s.goodput_mbps(),
            s.data,
            s.retries,
        );
    }
    if stats.len() > 30 {
        let _ = writeln!(out, "… ({} more seconds)", stats.len() - 30);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{read_capture_lossy, write_capture};
    use wifi_frames::phy::{Channel, Rate};
    use wifi_frames::{FrameKind, MacAddr};

    fn rec(ts: u64, src: u32, seq: u16) -> FrameRecord {
        FrameRecord {
            timestamp_us: ts,
            kind: FrameKind::Data,
            rate: Rate::R11,
            channel: Channel::new(6).unwrap(),
            dst: MacAddr::from_id(99),
            src: Some(MacAddr::from_id(src)),
            bssid: Some(MacAddr::from_id(99)),
            retry: false,
            seq: Some(seq),
            mac_bytes: 1028,
            payload_bytes: 1000,
            signal_dbm: -62,
            duration_us: 314,
        }
    }

    fn write_sniffers(tag: &str, sniffers: &[Vec<FrameRecord>]) -> Vec<PathBuf> {
        let dir = std::env::temp_dir().join(format!("congestion_ingest_test_{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        sniffers
            .iter()
            .enumerate()
            .map(|(i, records)| {
                let path = dir.join(format!("sniffer_{i}.pcap"));
                write_capture(&path, records).unwrap();
                path
            })
            .collect()
    }

    #[test]
    fn streaming_pipeline_matches_batch_end_to_end() {
        // Three sniffers with complementary losses and a little clock skew.
        let full: Vec<FrameRecord> = (0..3000u64)
            .map(|i| rec(i * 900, 1, (i % 4096) as u16))
            .collect();
        let sniffers: Vec<Vec<FrameRecord>> = (0..3)
            .map(|s| {
                full.iter()
                    .enumerate()
                    .filter(|(i, _)| i % 3 != s)
                    .map(|(_, r)| {
                        let mut r = *r;
                        r.timestamp_us += 20 * s as u64; // per-sniffer skew
                        r
                    })
                    .collect()
            })
            .collect();
        let paths = write_sniffers("e2e", &sniffers);

        let streamed = analyze_capture_streams(&paths).unwrap();

        // Batch reference: lossy-read each file, merge, analyze.
        let batch: Vec<Vec<FrameRecord>> = paths
            .iter()
            .map(|p| read_capture_lossy(p).unwrap().records)
            .collect();
        let views: Vec<&[FrameRecord]> = batch.iter().map(|t| &t[..]).collect();
        let merged = congestion::merge_traces(&views);
        let expected = congestion::analyze(&merged);

        assert_eq!(streamed.merged_records as usize, merged.len());
        assert_eq!(streamed.per_second, expected);
        assert_eq!(streamed.sources.len(), 3);
        assert!(streamed.sources.iter().all(|s| s.is_clean()));
        assert!(streamed.total_report().is_clean());
        assert_eq!(
            streamed.contributed.iter().sum::<u64>(),
            streamed.merged_records
        );
    }

    #[test]
    fn empty_input_set_yields_empty_analysis() {
        let out = analyze_capture_streams(&[]).unwrap();
        assert!(out.per_second.is_empty());
        assert_eq!(out.merged_records, 0);
        assert!(out.sources.is_empty());
    }

    #[test]
    fn missing_file_degrades_that_source_only() {
        // One unreadable source among two: the analysis completes on the
        // good one and reports the failure per-source instead of aborting.
        let good: Vec<FrameRecord> = (0..500u64)
            .map(|i| rec(i * 900, 1, (i % 4096) as u16))
            .collect();
        let mut paths = write_sniffers("missing", std::slice::from_ref(&good));
        paths.push(PathBuf::from("/nonexistent/sniffer.pcap"));

        let out = analyze_capture_streams(&paths).unwrap();
        assert!(out.sources[0].error.is_none());
        assert!(
            matches!(out.sources[1].error, Some(CaptureError::Pcap(_))),
            "missing file must surface as that source's error: {:?}",
            out.sources[1].error
        );
        let expected = congestion::analyze(&congestion::merge_traces(&[&good[..]]));
        assert_eq!(out.per_second, expected);
        assert_eq!(out.contributed, vec![out.merged_records, 0]);
    }

    #[test]
    fn panicking_decoder_fails_only_its_source() {
        let full: Vec<FrameRecord> = (0..2000u64)
            .map(|i| rec(i * 900, 1, (i % 4096) as u16))
            .collect();
        let sniffers = [full.clone(), full.clone(), full.clone()];
        let dir = std::env::temp_dir().join("congestion_ingest_test_panic");
        std::fs::create_dir_all(&dir).unwrap();
        let paths: Vec<PathBuf> = sniffers
            .iter()
            .enumerate()
            .map(|(i, records)| {
                // Only the middle sniffer's name carries the injection marker.
                let name = if i == 1 {
                    "sniffer_1_panic_inject_marker.pcap".to_string()
                } else {
                    format!("sniffer_{i}.pcap")
                };
                let path = dir.join(name);
                write_capture(&path, records).unwrap();
                path
            })
            .collect();

        std::env::set_var(PANIC_SOURCE_ENV, "panic_inject_marker");
        let out = analyze_capture_streams(&paths).unwrap();
        std::env::remove_var(PANIC_SOURCE_ENV);

        assert!(
            matches!(out.sources[1].error, Some(CaptureError::Panicked(_))),
            "injected panic must surface as that source's error: {:?}",
            out.sources[1].error
        );
        assert!(out.sources[0].is_clean());
        assert!(out.sources[2].is_clean());
        // The panicking source contributed nothing; the survivors carry the
        // full analysis (their traces are identical, so the merge equals one
        // of them).
        assert_eq!(out.contributed[1], 0);
        let expected = congestion::analyze(&congestion::merge_traces(&[&full[..]]));
        assert_eq!(out.per_second, expected);
        assert_eq!(out.merged_records as usize, full.len());
    }

    #[test]
    fn early_consumer_termination_reports_only_delivered_records() {
        // Drive decode_source by hand against a receiver that disconnects
        // after one batch: the outcome's counters must match a delivered
        // batch boundary, not the whole file.
        let records: Vec<FrameRecord> = (0..2000u64)
            .map(|i| rec(i * 900, 1, (i % 4096) as u16))
            .collect();
        let paths = write_sniffers("early_term", &[records]);
        let (tx, mut rx) = batch_channel::<FrameRecord>(1, BATCH_LEN);
        let worker = std::thread::spawn({
            let path = paths[0].clone();
            move || decode_source(&path, tx)
        });
        // Take exactly one batch, then drop the receiver.
        let mut taken = 0usize;
        for _ in rx.by_ref().take(BATCH_LEN) {
            taken += 1;
        }
        drop(rx);
        let outcome = worker.join().unwrap();
        assert_eq!(taken, BATCH_LEN);
        assert!(outcome.error.is_none());
        let total = outcome.report.records_total();
        assert!(
            total % BATCH_LEN as u64 == 0 && total >= taken as u64,
            "counters must sit on a delivered batch boundary, got {total}"
        );
        assert!(
            total < 2000,
            "counters must exclude records the consumer never saw"
        );
    }
}
