//! The paper's headline finding, interactive: rate adaptation that cannot
//! tell congestion losses from signal losses collapses a saturated channel.
//! This example pits ARF against fixed-11 Mbps and SNR-threshold selection
//! on the same overloaded cell (Section 7's recommendation).
//!
//! ```sh
//! cargo run --release --example rate_adaptation_study
//! ```

use congestion::analyze;
use ietf80211_congestion::prelude::*;
use ietf_workloads::load_ramp_with;
use wifi_sim::rate::RateAdaptation;

fn main() {
    let users = 150;
    let duration_s = 120;
    println!("overloading one channel with {users} users for {duration_s} s per algorithm…\n");
    println!(
        "{:<10} {:>7} {:>12} {:>10} {:>11} {:>12}",
        "algorithm", "util%", "goodput Mbps", "delivered", "retry drops", "1Mbps share"
    );
    for (name, adaptation) in [
        ("ARF", RateAdaptation::Arf(Rate::R11)),
        ("AARF", RateAdaptation::Aarf(Rate::R11)),
        ("Fixed-11", RateAdaptation::Fixed(Rate::R11)),
        ("SNR(3dB)", RateAdaptation::Snr(3.0)),
    ] {
        let result = load_ramp_with(3, users, duration_s, 1.7, adaptation, 0.02).run();
        let stats = analyze(&result.traces[0]);
        // Average over the saturated tail.
        let tail: Vec<_> = stats
            .iter()
            .filter(|s| s.second >= duration_s * 6 / 10)
            .collect();
        let n = tail.len().max(1) as f64;
        let util = tail.iter().map(|s| s.utilization_pct()).sum::<f64>() / n;
        let goodput = tail.iter().map(|s| s.goodput_mbps()).sum::<f64>() / n;
        let busy1 = tail
            .iter()
            .map(|s| s.busy_by_rate_us[0] as f64 / 1e6)
            .sum::<f64>()
            / n;
        let delivered: u64 = result.stations.iter().map(|s| s.delivered).sum();
        let drops: u64 = result.stations.iter().map(|s| s.retry_drops).sum();
        println!(
            "{name:<10} {util:>7.1} {goodput:>12.2} {delivered:>10} {drops:>11} {busy1:>12.2}"
        );
    }
    println!(
        "\nExpected shape (paper §7): ARF surrenders air time to 1 Mbps frames under \
         congestion; holding 11 Mbps or tracking SNR preserves goodput."
    );
}
