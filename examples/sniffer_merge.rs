//! Multi-sniffer coverage: the day session ran three sniffers in one room.
//! Two sniffers watching the *same* channel from different seats miss
//! different frames; merging their captures (with duplicate suppression)
//! recovers coverage neither had alone — and tightens the busy-time metric.
//!
//! ```sh
//! cargo run --release --example sniffer_merge
//! ```

use congestion::merge::{coverage_gain, merge_traces};
use ietf80211_congestion::prelude::*;
use wifi_sim::geometry::Pos;
use wifi_sim::rate::RateAdaptation;
use wifi_sim::sniffer::SnifferConfig;
use wifi_sim::station::RtsPolicy;
use wifi_sim::traffic::TrafficProfile;

fn main() {
    // A busy cell observed by two same-channel sniffers at opposite ends.
    let mut sim = Simulator::new(SimConfig {
        seed: 11,
        radio: ietf_workloads::ietf_radio(11),
        ..SimConfig::default()
    });
    sim.add_ap(Pos::new(32.0, 18.0), 0, 6);
    for i in 0..40 {
        let angle = i as f64 * 0.9;
        sim.add_client(ClientConfig {
            pos: Pos::new(32.0 + 22.0 * angle.cos(), 18.0 + 14.0 * angle.sin()),
            channel_idx: 0,
            rts_policy: RtsPolicy::Never,
            adaptation: RateAdaptation::Arf(Rate::R11),
            traffic: TrafficProfile::symmetric(6.0),
            join_at_us: 0,
            leave_at_us: None,
            power_save_interval_us: None,
            frag_threshold: None,
        });
    }
    for pos in [Pos::new(12.0, 8.0), Pos::new(52.0, 28.0)] {
        sim.add_sniffer(SnifferConfig {
            pos,
            channel_idx: 0,
            ..SnifferConfig::default()
        });
    }
    sim.run_until(60_000_000);

    let a = sim.sniffers()[0].trace.clone();
    let b = sim.sniffers()[1].trace.clone();
    let on_air = sim.ground_truth.records.len();
    println!("frames on air:        {on_air}");
    println!(
        "sniffer A captured:   {} ({:.1}%)",
        a.len(),
        pct(a.len(), on_air)
    );
    println!(
        "sniffer B captured:   {} ({:.1}%)",
        b.len(),
        pct(b.len(), on_air)
    );

    let merged = merge_traces(&[&a, &b]);
    let gain = coverage_gain(&[&a, &b]);
    println!(
        "merged (deduplicated): {} ({:.1}%) — +{} frames over the best single sniffer",
        merged.len(),
        pct(gain.merged, on_air),
        gain.merged - gain.best_single
    );
    println!(
        "first-capture split:   A {} / B {}",
        gain.contributed[0], gain.contributed[1]
    );

    // The merged trace tightens the busy-time measurement.
    let util = |records: &[wifi_frames::FrameRecord]| {
        let stats = analyze(records);
        let n = stats.len().max(1) as f64;
        stats.iter().map(|s| s.utilization_pct()).sum::<f64>() / n
    };
    println!("\nmean measured utilization:");
    println!("  sniffer A: {:.1}%", util(&a));
    println!("  sniffer B: {:.1}%", util(&b));
    println!(
        "  merged:    {:.1}%  (closer to the channel's true occupancy)",
        util(&merged)
    );
}

fn pct(n: usize, of: usize) -> f64 {
    n as f64 / of.max(1) as f64 * 100.0
}
