//! Quickstart: build a small 802.11b cell, sniff it, and measure congestion
//! with the paper's channel busy-time metric.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ietf80211_congestion::prelude::*;
use wifi_sim::geometry::Pos;
use wifi_sim::rate::RateAdaptation;
use wifi_sim::sniffer::SnifferConfig;
use wifi_sim::station::RtsPolicy;
use wifi_sim::traffic::TrafficProfile;

fn main() {
    // One AP, eight clients, one passive sniffer.
    let mut sim = Simulator::new(SimConfig::default());
    sim.add_ap(Pos::new(0.0, 0.0), 0, 6);
    for i in 0..8 {
        let angle = i as f64 / 8.0 * std::f64::consts::TAU;
        sim.add_client(ClientConfig {
            pos: Pos::new(10.0 * angle.cos(), 10.0 * angle.sin()),
            channel_idx: 0,
            rts_policy: RtsPolicy::Never,
            adaptation: RateAdaptation::Arf(Rate::R11),
            traffic: TrafficProfile::symmetric(30.0),
            join_at_us: 0,
            leave_at_us: None,
            power_save_interval_us: None,
            frag_threshold: None,
        });
    }
    sim.add_sniffer(SnifferConfig::default());

    // Thirty simulated seconds.
    sim.run_until(30_000_000);

    // Analyze the sniffer's capture exactly as the paper does.
    let trace = &sim.sniffers()[0].trace;
    println!("captured {} frames", trace.len());

    let per_second = analyze(trace);
    let bins = UtilizationBins::build(&per_second);
    let classifier = CongestionClassifier::ietf();

    println!("\nsec  util%  thr(Mbps)  good(Mbps)  congestion");
    for s in per_second.iter().take(10) {
        println!(
            "{:3}  {:5.1}  {:9.2}  {:10.2}  {:?}",
            s.second,
            s.utilization_pct(),
            s.throughput_mbps(),
            s.goodput_mbps(),
            classifier.classify(s.utilization_pct()),
        );
    }
    println!("\nutilization mode over the run: {:?}%", bins.mode());

    // How lossy was our sniffer? (Equation 1 of the paper.)
    let est = estimate_unrecorded(trace);
    println!(
        "estimated unrecorded frames: {:.2}% ({} DATA, {} RTS, {} CTS inferred)",
        est.unrecorded_pct(),
        est.counts.data,
        est.counts.rts,
        est.counts.cts
    );
}
