//! The plenary session end to end: run the packed-ballroom scenario, build
//! the utilization histogram (Fig 5c), classify congestion, and rank the
//! busiest access points (Fig 4a) — the paper's workflow on one screen.
//!
//! ```sh
//! cargo run --release --example plenary_congestion
//! ```

use congestion::ap_stats::{infer_aps, rank_aps, top_k_share};
use ietf80211_congestion::prelude::*;

fn main() {
    // A reduced-scale plenary: ~120 users for a quick run; crank `users`
    // and `duration_s` up to approach the real deployment.
    let mut scale = SessionScale::plenary_default(42);
    scale.users = 120;
    scale.duration_s = 120;
    println!(
        "running plenary: {} users, {} s, seed {} …",
        scale.users, scale.duration_s, scale.seed
    );
    let result = ietf_plenary(scale).run();

    // Per-channel utilization (the three sniffers are the three channels).
    let mut pooled_seconds = Vec::new();
    for (ch, trace) in result.traces.iter().enumerate() {
        let stats = analyze(trace);
        let bins = UtilizationBins::build(&stats);
        println!(
            "channel {}: {} frames captured, utilization mode {:?}%",
            [1, 6, 11][ch],
            trace.len(),
            bins.mode()
        );
        pooled_seconds.extend(stats);
    }

    // Fig 5(c): the pooled histogram.
    let bins = UtilizationBins::build(&pooled_seconds);
    println!("\nutilization histogram (pooled, non-empty bins):");
    for (u, n) in bins.histogram() {
        if n > 0 && u % 5 == 0 {
            println!("{u:3}%  {}", "#".repeat((n as usize).min(60)));
        }
    }
    println!("mode: {:?}% (paper: ≈86% for the plenary)", bins.mode());

    // Congestion classes over the session.
    let classifier = CongestionClassifier::ietf();
    let mut counts = [0u64; 3];
    for s in &pooled_seconds {
        match classifier.classify(s.utilization_pct()) {
            CongestionLevel::Uncongested => counts[0] += 1,
            CongestionLevel::Moderate => counts[1] += 1,
            CongestionLevel::High => counts[2] += 1,
        }
    }
    println!(
        "\nseconds by congestion class: {} uncongested, {} moderate, {} high",
        counts[0], counts[1], counts[2]
    );

    // Fig 4(a): the busiest APs.
    let pooled: Vec<_> = result.traces.concat();
    let aps = infer_aps(&pooled);
    let ranked = rank_aps(&pooled, &aps);
    println!("\nbusiest APs (frames sent+received):");
    for (i, ap) in ranked.iter().take(5).enumerate() {
        println!("  #{:<2} {}  {:>8} frames", i + 1, ap.mac, ap.frames);
    }
    println!(
        "top-{} APs carry {:.1}% of AP traffic",
        ranked.len().min(15),
        top_k_share(&ranked, 15)
    );
}
