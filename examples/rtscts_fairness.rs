//! Section 6.1's fairness finding, reproduced: when only a handful of
//! stations use RTS/CTS on a congested channel, those stations are starved
//! relative to stations that skip the handshake.
//!
//! ```sh
//! cargo run --release --example rtscts_fairness
//! ```

use ietf80211_congestion::prelude::*;
use ietf_workloads::load_ramp_with;
use wifi_sim::rate::RateAdaptation;

fn main() {
    let users = 150;
    let duration_s = 120;
    println!("{users} users, {duration_s} s, sweeping the RTS/CTS-using fraction…\n");
    println!(
        "{:>12} {:>12} {:>18} {:>20} {:>10}",
        "RTS fraction", "RTS clients", "delivered/RTS sta", "delivered/plain sta", "ratio"
    );
    for fraction in [0.02, 0.05, 0.15, 0.5, 1.0] {
        let result = load_ramp_with(
            17,
            users,
            duration_s,
            1.7,
            RateAdaptation::Arf(Rate::R11),
            fraction,
        )
        .run();
        let clients: Vec<_> = result.stations.iter().filter(|s| !s.is_ap).collect();
        let (rts, plain): (Vec<_>, Vec<_>) = clients.iter().partition(|s| s.uses_rts);
        let mean = |set: &[&&ietf_workloads::StationSummary]| {
            if set.is_empty() {
                return f64::NAN;
            }
            set.iter().map(|s| s.delivered as f64).sum::<f64>() / set.len() as f64
        };
        let m_rts = mean(&rts);
        let m_plain = mean(&plain);
        println!(
            "{:>11.0}% {:>12} {:>18.1} {:>20.1} {:>10.2}",
            fraction * 100.0,
            rts.len(),
            m_rts,
            m_plain,
            m_rts / m_plain
        );
    }
    println!(
        "\nExpected shape (paper §6.1): a ratio below 1 for small fractions — the \
         RTS/CTS minority pays for two extra vulnerable control frames per exchange."
    );
}
