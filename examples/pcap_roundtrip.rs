//! Capture-file pipeline: simulate, export the sniffer trace as a
//! radiotap pcap with the study's 250-byte snap length, re-ingest the file,
//! and verify the busy-time analysis is identical — proving the analysis
//! needs nothing beyond what a 2005 sniffer actually recorded.
//!
//! ```sh
//! cargo run --release --example pcap_roundtrip
//! ```

use ietf80211_congestion::prelude::*;

fn main() {
    let scenario = load_ramp(5, 80, 30, 2.0);
    let result = scenario.run();
    let trace = &result.traces[0];
    println!("simulated: {} frames captured by the sniffer", trace.len());

    let dir = std::env::temp_dir().join("ietf80211-congestion");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("plenary_ch1.pcap");

    let written = write_capture(&path, trace).expect("write pcap");
    let size = std::fs::metadata(&path).expect("stat").len();
    println!(
        "wrote {written} records to {} ({size} bytes, snaplen 250)",
        path.display()
    );

    let reread = read_capture(&path).expect("read pcap");
    println!("re-read: {} records", reread.len());

    let before = analyze(trace);
    let after = analyze(&reread);
    assert_eq!(before.len(), after.len(), "same seconds");
    let mut max_delta = 0i64;
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(
            a.busy_us, b.busy_us,
            "busy time must survive snaplen truncation (second {})",
            a.second
        );
        max_delta = max_delta.max((a.frames as i64 - b.frames as i64).abs());
    }
    println!("\nper-second busy time identical before/after the pcap roundtrip ✓");
    println!("max per-second frame-count delta: {max_delta}");

    let bins = UtilizationBins::build(&after);
    println!("utilization mode from the re-read file: {:?}%", bins.mode());
}
