//! Capture-file pipeline: simulate, export the sniffer trace as a
//! radiotap pcap with the study's 250-byte snap length, re-ingest the file,
//! and verify the busy-time analysis is identical — proving the analysis
//! needs nothing beyond what a 2005 sniffer actually recorded. Then damage
//! the file with the fault-injection harness and re-ingest it in lossy
//! mode, showing the resynchronizing reader recovers the bulk of the trace
//! and reports exactly what it had to skip.
//!
//! ```sh
//! cargo run --release --example pcap_roundtrip
//! ```

use ietf80211_congestion::prelude::*;

fn main() {
    let scenario = load_ramp(5, 80, 30, 2.0);
    let result = scenario.run();
    let trace = &result.traces[0];
    println!("simulated: {} frames captured by the sniffer", trace.len());

    let dir = std::env::temp_dir().join("ietf80211-congestion");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("plenary_ch1.pcap");

    let written = write_capture(&path, trace).expect("write pcap");
    let size = std::fs::metadata(&path).expect("stat").len();
    println!(
        "wrote {written} records to {} ({size} bytes, snaplen 250)",
        path.display()
    );

    let reread = read_capture(&path).expect("read pcap");
    println!("re-read: {} records", reread.len());

    let before = analyze(trace);
    let after = analyze(&reread);
    assert_eq!(before.len(), after.len(), "same seconds");
    let mut max_delta = 0i64;
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(
            a.busy_us, b.busy_us,
            "busy time must survive snaplen truncation (second {})",
            a.second
        );
        max_delta = max_delta.max((a.frames as i64 - b.frames as i64).abs());
    }
    println!("\nper-second busy time identical before/after the pcap roundtrip ✓");
    println!("max per-second frame-count delta: {max_delta}");

    let bins = UtilizationBins::build(&after);
    println!("utilization mode from the re-read file: {:?}%", bins.mode());

    // Now the unhappy path: flip bits, splice garbage and blast a length
    // field, then re-ingest in lossy mode.
    use wifi_pcap::chaos::{corrupt_bytes, ChaosConfig, ChaosRng};
    let mut bytes = std::fs::read(&path).expect("re-read bytes");
    let cfg = ChaosConfig {
        bit_flips_per_kb: 0.05,
        truncate: 0.0,
        garbage_insert: 1.0,
        length_blast: 1.0,
    };
    let faults = corrupt_bytes(&mut bytes, 24, &cfg, &mut ChaosRng::new(42));
    println!(
        "\ninjected damage: {} bit flips, {} garbage bytes, {} length blasts",
        faults.bit_flips, faults.garbage_bytes, faults.length_blasts
    );
    let dirty = dir.join("plenary_ch1_damaged.pcap");
    std::fs::write(&dirty, &bytes).expect("write damaged");
    assert!(read_capture(&dirty).is_err(), "strict mode must refuse");
    let lossy = read_capture_lossy(&dirty).expect("lossy read");
    println!(
        "lossy re-read: {} of {} records ({} resyncs, {} bytes skipped)",
        lossy.records.len(),
        reread.len(),
        lossy.report.resyncs,
        lossy.report.bytes_skipped
    );
    println!("ingest report: {}", lossy.report.to_json());
    assert!(lossy.records.len() * 100 >= reread.len() * 90);
    println!("lossy ingestion recovered ≥90% of the damaged capture ✓");
}
