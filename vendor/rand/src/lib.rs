//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API subset it actually uses* behind the same
//! names (`[patch.crates-io]` in the workspace manifest points `rand` here).
//! Implemented surface:
//!
//! * [`rngs::SmallRng`] — a xoshiro256++ generator (the same algorithm the
//!   real `rand 0.8` uses for `SmallRng` on 64-bit targets), seeded through
//!   SplitMix64 exactly like `rand_core::SeedableRng::seed_from_u64`;
//! * [`Rng`] — `gen`, `gen_range` (integer and float, half-open and
//!   inclusive), `gen_bool`;
//! * [`SeedableRng`] — `from_seed` and `seed_from_u64`.
//!
//! Simulations only require determinism and reasonable uniformity, not
//! stream compatibility with upstream `rand`; all quantitative tests in the
//! workspace assert behavioural properties, never exact draw values.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniform draw of `T` over its natural full range (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`. Panics on an empty range, like the real
    /// crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed with SplitMix64 (the upstream
    /// algorithm), then delegates to [`SeedableRng::from_seed`].
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types drawable uniformly over their natural range by [`Rng::gen`].
pub trait Standard: Sized {
    /// One uniform draw.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        out
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// One uniform draw from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform draw of an integer in `[0, span)` by widening multiply
/// (Lemire's method, without the rejection step — the bias at spans far
/// below 2^64 is immaterial for simulation).
fn below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                lo + below(rng, span as u64) as $t
            }
        }
    )*};
}
sample_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}
sample_int!(i8, i16, i32, i64, isize);

macro_rules! sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
sample_float!(f32, f64);

/// The pre-built generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the algorithm
    /// behind the real crate's `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i8 = rng.gen_range(-100..0);
            assert!((-100..0).contains(&w));
            let x: f64 = rng.gen_range(0.5..2.5);
            assert!((0.5..2.5).contains(&x));
            let y: u32 = rng.gen_range(0..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn array_draws_fill_all_bytes() {
        let mut rng = SmallRng::seed_from_u64(4);
        let draws: Vec<[u8; 6]> = (0..50).map(|_| rng.gen()).collect();
        // Some byte differs across draws in every position.
        for pos in 0..6 {
            assert!(draws.windows(2).any(|w| w[0][pos] != w[1][pos]));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _: u64 = rng.gen_range(5..5);
    }
}
