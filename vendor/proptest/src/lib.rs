//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the strategy-combinator subset its property tests use, wired in through
//! `[patch.crates-io]`. Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports its seed and iteration so it
//!   can be replayed, but is not minimized;
//! * **deterministic** — every test function derives its RNG stream from a
//!   hash of its own name, so failures reproduce without a persistence file;
//! * **256 cases per property**, matching proptest's default.
//!
//! Supported surface: [`Strategy`] with `prop_map` / `prop_filter` /
//! `boxed`, [`any`] over primitives and byte arrays, range strategies,
//! tuple strategies up to 8 elements, [`Just`], `prop_oneof!`,
//! [`collection::vec`] with range or exact sizes, [`sample::Index`],
//! character-class string patterns (`"[a-z0-9]{0,16}"`), and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The deterministic generator behind every strategy draw (xoshiro256++,
/// seeded per test function and case index).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator for `(test_name, case)` — the pair fully determines the
    /// stream, which is what makes failures replayable.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut s = [0u64; 4];
        let mut state = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for slot in &mut s {
            // SplitMix64 expansion.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// What a property body returns (implicitly `Ok(())` unless an assertion
/// fails or the body `return`s early).
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying the draw. Panics if
    /// 1000 consecutive draws all fail `pred` (a degenerate filter).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive draws",
            self.reason
        );
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy choosing uniformly among type-erased alternatives —
/// the engine behind `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given alternatives (at least one).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` over its full value range.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        out
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Character-class string patterns: the supported shape is
/// `"[<class>]{min,max}"` (e.g. `"[a-z0-9]{0,16}"`), which covers the
/// workspace's usage of proptest's regex string strategies.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[<chars-and-ranges>]{min,max}` into (alphabet, min, max).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (min, max) = (lo.parse().ok()?, hi.parse().ok()?);
    if min > max {
        return None;
    }
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: an exact length or a half-open range.
    pub trait SizeRange {
        /// Draws a length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// A strategy for vectors of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time
    /// (uniform once [`Index::index`] is given the length).
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// This index resolved against a collection of length `len`
        /// (which must be nonzero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (u128::from(self.0) * len as u128 >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// The glob import property tests use.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, Strategy, TestCaseError, TestCaseResult};
}

/// Chooses uniformly among strategy arms that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running 256 deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                const CASES: u64 = 256;
                for case in 0..CASES {
                    let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut prop_rng);)*
                    let result: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    if let Err(e) = result {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1, CASES, stringify!($name), e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn class_pattern_parses() {
        let (alpha, min, max) = parse_class_pattern("[a-z0-9]{0,16}").unwrap();
        assert_eq!(alpha.len(), 36);
        assert_eq!((min, max), (0, 16));
        assert!(parse_class_pattern("plain").is_none());
    }

    #[test]
    fn deterministic_streams() {
        let draw = || {
            let mut rng = TestRng::for_case("x", 3);
            (0u64..100).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 5u32..10, b in -4i8..=4, s in "[ab]{1,3}") {
            prop_assert!((5..10).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)]) {
            prop_assert!(v == 1 || (20..40).contains(&v));
        }

        #[test]
        fn vec_and_index(items in collection::vec(any::<u8>(), 1..50), idx in any::<prop::sample::Index>()) {
            let i = idx.index(items.len());
            prop_assert!(i < items.len());
        }
    }
}
