//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the bench-harness API subset its `harness = false` benches use, wired in
//! through `[patch.crates-io]`. This is a plain wall-clock harness — no
//! statistical analysis, outlier detection, or HTML reports — but it keeps
//! `cargo bench` runnable and prints per-iteration timing plus throughput.
//!
//! Supported surface: [`Criterion::bench_function`] /
//! [`Criterion::benchmark_group`], groups with `throughput` /
//! `sample_size` / `bench_function` / `finish`, [`Bencher::iter`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group; reported as elements or
/// bytes per second next to the timing line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// `n` logical elements processed per iteration.
    Elements(u64),
    /// `n` bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to registered bench functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_bench(id, None, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: self.sample_size,
        }
    }
}

/// A named group of benchmarks sharing throughput and sample settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut BenchmarkGroup {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        f: F,
    ) -> &mut BenchmarkGroup {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group (reports are printed eagerly, so this only consumes
    /// the group, matching the real API).
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` back-to-back `iters` times and records the total elapsed
    /// wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One benchmark: a warmup sample to size the iteration count toward
/// ~`sample_size` ms of measurement, then a timed run, then one line of
/// output.
fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    // Warmup with a single iteration to estimate cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for sample_size iterations or ~200ms total, whichever is less work.
    let budget = Duration::from_millis(200);
    let fit = (budget.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;
    let iters = fit.min(sample_size as u64).max(1);

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:.1} Melem/s", n as f64 / ns * 1e3),
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{id:<40} {ns:>12.0} ns/iter ({iters} iters){rate}");
}

/// Bundles bench functions into one group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u64;
        Criterion::default().bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10)).sample_size(5);
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
