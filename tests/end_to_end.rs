//! Cross-crate integration tests: workload → simulator → sniffer capture →
//! congestion analysis, asserting the paper's qualitative results hold end
//! to end at test scale.

use congestion::ap_stats::{infer_aps, rank_aps, top_k_share};
use congestion::users::{peak_users, users_per_window};
use congestion::{analyze, estimate_unrecorded, CongestionClassifier, UtilizationBins};
use ietf_workloads::{ietf_day, ietf_plenary, load_ramp, SessionScale};
use wifi_frames::fc::FrameKind;
use wifi_frames::phy::Rate;

fn small_day() -> ietf_workloads::ScenarioResult {
    let mut scale = SessionScale::day_default(77);
    scale.users = 60;
    scale.duration_s = 40;
    ietf_day(scale).run()
}

fn small_plenary() -> ietf_workloads::ScenarioResult {
    let mut scale = SessionScale::plenary_default(78);
    scale.users = 60;
    scale.duration_s = 40;
    ietf_plenary(scale).run()
}

#[test]
fn day_session_produces_three_channel_traces() {
    let result = small_day();
    assert_eq!(result.traces.len(), 3);
    for (ch, trace) in result.traces.iter().enumerate() {
        assert!(
            trace.len() > 200,
            "channel {ch} captured only {} frames",
            trace.len()
        );
        // Traces are time-ordered.
        assert!(trace
            .windows(2)
            .all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }
}

#[test]
fn plenary_is_busier_than_day_per_channel() {
    let day = small_day();
    let plenary = small_plenary();
    let mode_of = |result: &ietf_workloads::ScenarioResult| {
        let mut seconds = Vec::new();
        for t in &result.traces {
            seconds.extend(analyze(t));
        }
        UtilizationBins::build(&seconds).mode().unwrap_or(0)
    };
    let day_mode = mode_of(&day);
    let plenary_mode = mode_of(&plenary);
    assert!(
        plenary_mode > day_mode,
        "plenary mode {plenary_mode} should exceed day mode {day_mode}"
    );
}

#[test]
fn analysis_invariants_hold_on_simulated_traces() {
    let result = small_plenary();
    for trace in &result.traces {
        for s in analyze(trace) {
            assert!(s.goodput_bits <= s.throughput_bits);
            assert!(s.acked_data <= s.data);
            let cats: u64 = s.tx_by_cat.iter().flatten().sum();
            assert_eq!(cats, s.data);
            let first: u64 = s.first_ack_by_rate.iter().sum();
            assert!(first <= s.acked_data);
        }
    }
}

#[test]
fn aps_inferred_and_ranked() {
    let result = small_day();
    let pooled = result.traces.concat();
    let aps = infer_aps(&pooled);
    assert_eq!(aps.len(), 9, "all nine grid APs beacon within range");
    let ranked = rank_aps(&pooled, &aps);
    assert_eq!(ranked.len(), 9);
    assert!(ranked.windows(2).all(|w| w[0].frames >= w[1].frames));
    let share = top_k_share(&ranked, 9);
    assert!((99.9..=100.0).contains(&share));
}

#[test]
fn users_appear_in_windows() {
    let result = small_day();
    let pooled = {
        let mut p = result.traces.concat();
        p.sort_by_key(|r| r.timestamp_us);
        p
    };
    let aps = infer_aps(&pooled);
    let windows = users_per_window(&pooled, &aps, 10);
    assert!(!windows.is_empty());
    let peak = peak_users(&windows);
    assert!(
        (10..=60).contains(&peak),
        "peak users {peak} out of range for 60 scheduled users"
    );
}

#[test]
fn unrecorded_estimator_stays_below_true_loss() {
    let result = small_plenary();
    for (ch, trace) in result.traces.iter().enumerate() {
        let est = estimate_unrecorded(trace);
        let st = &result.sniffer_stats[ch];
        let missed = st.missed_range + st.missed_bit_error + st.missed_hardware;
        let true_pct = missed as f64 / (missed + st.captured).max(1) as f64 * 100.0;
        // The estimator is a lower bound (dual losses are invisible); allow
        // a little slack for window mismatches.
        assert!(
            est.unrecorded_pct() <= true_pct + 3.0,
            "ch{ch}: estimated {:.2}% vs true {true_pct:.2}%",
            est.unrecorded_pct()
        );
    }
}

#[test]
fn ramp_reaches_high_congestion_and_uses_all_rates() {
    let result = load_ramp(79, 80, 60, 2.0).run();
    let stats = analyze(&result.traces[0]);
    let bins = UtilizationBins::build(&stats);
    let max_util = bins.occupied().map(|(u, _)| u).max().expect("nonempty");
    assert!(max_util >= 80, "ramp peaked at only {max_util}%");
    // All four rates appear among the data frames (fading spreads links
    // across the rate ladder).
    for rate in Rate::ALL {
        let n = result.traces[0]
            .iter()
            .filter(|r| r.kind == FrameKind::Data && r.rate == rate)
            .count();
        assert!(n > 0, "no data frames at {rate}");
    }
    // Retries exist under saturation.
    assert!(result.traces[0].iter().any(|r| r.retry));
}

#[test]
fn congestion_classifier_spans_ramp() {
    let result = load_ramp(80, 80, 60, 2.0).run();
    let stats = analyze(&result.traces[0]);
    let classifier = CongestionClassifier::ietf();
    let mut seen = [false; 3];
    for s in &stats {
        match classifier.classify(s.utilization_pct()) {
            congestion::CongestionLevel::Uncongested => seen[0] = true,
            congestion::CongestionLevel::Moderate => seen[1] = true,
            congestion::CongestionLevel::High => seen[2] = true,
        }
    }
    assert!(
        seen[0] && seen[1],
        "ramp must cover uncongested and moderate"
    );
    assert!(
        seen[2],
        "a saturated ramp must produce highly congested seconds"
    );
}

#[test]
fn scenario_results_are_deterministic() {
    let a = load_ramp(81, 40, 20, 2.0).run();
    let b = load_ramp(81, 40, 20, 2.0).run();
    assert_eq!(a.traces[0], b.traces[0]);
    assert_eq!(a.ground_truth.len(), b.ground_truth.len());
    let c = load_ramp(82, 40, 20, 2.0).run();
    assert_ne!(a.traces[0], c.traces[0]);
}
