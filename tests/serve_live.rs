//! End-to-end tests of `wifi-congestion serve`: grow live capture files
//! while the service tails them — including mid-test corruption and file
//! rotation — drive the unix-socket status endpoint, and check the final
//! analysis byte-matches the batch CLI over the same final bytes.

use ietf80211_congestion::ingest::PANIC_SOURCE_ENV;
use ietf80211_congestion::trace::write_capture;
use ietf80211_congestion::wifi_frames::phy::{Channel, Rate};
use ietf80211_congestion::wifi_frames::{FrameKind, FrameRecord, MacAddr};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wifi-congestion"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("wifi-congestion-serve")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn rec(ts: u64, src: u32, seq: u16) -> FrameRecord {
    FrameRecord {
        timestamp_us: ts,
        kind: FrameKind::Data,
        rate: Rate::R11,
        channel: Channel::new(6).unwrap(),
        dst: MacAddr::from_id(99),
        src: Some(MacAddr::from_id(src)),
        bssid: Some(MacAddr::from_id(99)),
        retry: false,
        seq: Some(seq),
        mac_bytes: 1028,
        payload_bytes: 1000,
        signal_dbm: -62,
        duration_us: 314,
    }
}

/// Three per-sniffer views of one trace: sniffer `s` misses every third
/// record and observes a small fixed clock skew.
fn sniffer_views(total: u64) -> Vec<Vec<FrameRecord>> {
    let full: Vec<FrameRecord> = (0..total)
        .map(|i| rec(i * 900, 1, (i % 4096) as u16))
        .collect();
    (0..3u64)
        .map(|s| {
            full.iter()
                .enumerate()
                .filter(|(i, _)| *i as u64 % 3 != s)
                .map(|(_, r)| {
                    let mut r = *r;
                    r.timestamp_us += 20 * s;
                    r
                })
                .collect()
        })
        .collect()
}

/// Serializes records to classic-pcap bytes (via a temp file round-trip).
fn capture_bytes(dir: &Path, tag: &str, records: &[FrameRecord]) -> Vec<u8> {
    let path = dir.join(format!("scratch_{tag}.pcap"));
    write_capture(&path, records).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    bytes
}

fn append(path: &Path, bytes: &[u8]) {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap();
    f.write_all(bytes).unwrap();
}

fn byte_chunks(bytes: &[u8], n: usize) -> Vec<&[u8]> {
    bytes.chunks(bytes.len().div_ceil(n).max(1)).collect()
}

/// One request/response round-trip against the serve status socket.
fn query(sock: &Path, cmd: &str) -> Option<String> {
    let mut s = UnixStream::connect(sock).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    s.write_all(cmd.as_bytes()).ok()?;
    s.write_all(b"\n").ok()?;
    let mut reply = String::new();
    s.read_to_string(&mut reply).ok()?;
    Some(reply)
}

fn field_u64(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &json[json.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn sum_of(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let mut total = 0;
    let mut rest = json;
    while let Some(i) = rest.find(&pat) {
        rest = &rest[i + pat.len()..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        total += rest[..end].parse::<u64>().unwrap_or(0);
    }
    total
}

/// Polls `status` until the merge and decode counters stop moving (all
/// written bytes consumed, merge as far along as it can go without a stop).
fn wait_until_settled(sock: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut last = (0u64, 0u64);
    let mut stable = 0;
    loop {
        assert!(Instant::now() < deadline, "serve did not settle in time");
        std::thread::sleep(Duration::from_millis(300));
        let Some(status) = query(sock, "status") else {
            continue;
        };
        let snap = (
            field_u64(&status, "merged_records").unwrap_or(0),
            sum_of(&status, "received"),
        );
        if snap == last {
            stable += 1;
            if stable >= 2 {
                return status;
            }
        } else {
            stable = 0;
            last = snap;
        }
    }
}

#[test]
fn serve_matches_batch_under_growth_chaos_and_rotation() {
    let dir = temp_dir("equivalence");
    let views = sniffer_views(6000);

    // Source 0: clean. Source 1: a damaged region mid-file. Source 2: two
    // capture files, the second replacing the first mid-test (rotation).
    let clean_bytes = capture_bytes(&dir, "clean", &views[0]);
    let mut chaos_bytes = capture_bytes(&dir, "chaos", &views[1]);
    let wreck = chaos_bytes.len() * 2 / 5;
    chaos_bytes[wreck..wreck + 180].fill(0xFF);
    let half = views[2].len() / 2;
    let part_a = capture_bytes(&dir, "part_a", &views[2][..half]);
    let part_b = capture_bytes(&dir, "part_b", &views[2][half..]);

    // Reference files carrying the exact final bytes each live source will
    // have presented: the rotated source's decoder sees part A's bytes (the
    // old descriptor stays readable through the swap) followed by part B's.
    let ref0 = dir.join("ref0.pcap");
    let ref1 = dir.join("ref1.pcap");
    let ref2 = dir.join("ref2.pcap");
    std::fs::write(&ref0, &clean_bytes).unwrap();
    std::fs::write(&ref1, &chaos_bytes).unwrap();
    std::fs::write(&ref2, [part_a.as_slice(), part_b.as_slice()].concat()).unwrap();

    let live0 = dir.join("live0.pcap");
    let live1 = dir.join("live1.pcap");
    let live2 = dir.join("live2.pcap");
    let sock = dir.join("serve.sock");

    let child = bin()
        .args([
            "serve",
            live0.to_str().unwrap(),
            live1.to_str().unwrap(),
            live2.to_str().unwrap(),
            "--socket",
            sock.to_str().unwrap(),
            "--poll-ms",
            "10",
            "--skew-horizon-us",
            "none",
            "--stall-ms",
            "none",
            "--heartbeat-s",
            "0",
            "--max-duration-s",
            "60",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // Grow all three sources concurrently in small interleaved appends.
    let c0 = byte_chunks(&clean_bytes, 24);
    let c1 = byte_chunks(&chaos_bytes, 24);
    let ca = byte_chunks(&part_a, 12);
    let cb = byte_chunks(&part_b, 12);
    for round in 0..24 {
        if let Some(b) = c0.get(round) {
            append(&live0, b);
        }
        if let Some(b) = c1.get(round) {
            append(&live1, b);
        }
        if round < 12 {
            if let Some(b) = ca.get(round) {
                append(&live2, b);
            }
        } else {
            if round == 12 {
                std::fs::remove_file(&live2).unwrap();
            }
            if let Some(b) = cb.get(round - 12) {
                append(&live2, b);
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    let status = wait_until_settled(&sock);
    assert!(status.contains("\"sources\":["), "{status}");
    assert!(status.contains("\"watermark_us\":"), "{status}");
    assert_eq!(sum_of(&status, "rotations"), 1, "{status}");
    let seconds = query(&sock, "seconds").expect("seconds endpoint");
    assert!(seconds.trim_end().starts_with('['), "{seconds}");
    assert!(seconds.contains("\"class\":"), "{seconds}");

    let reply = query(&sock, "shutdown").expect("shutdown accepted");
    assert!(reply.contains("stopping"), "{reply}");
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let batch = bin()
        .args([
            "analyze",
            ref0.to_str().unwrap(),
            ref1.to_str().unwrap(),
            ref2.to_str().unwrap(),
        ])
        .output()
        .expect("run analyze");
    assert!(batch.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&batch.stdout),
        "serve final analysis must byte-match batch analysis of the same bytes"
    );
    // The damaged source really was damaged (and only skip-counted).
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("had skips"),
        "expected damage accounting on stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_skips_past_a_stalled_source_and_marks_it_lagging() {
    let dir = temp_dir("stalled");
    let views = sniffer_views(6000);
    let b0 = capture_bytes(&dir, "s0", &views[0]);
    let b1 = capture_bytes(&dir, "s1", &views[1]);
    // Source 2 delivers only its first ~10% of records, then stalls forever.
    let stall_at = views[2].len() / 10;
    let b2 = capture_bytes(&dir, "s2", &views[2][..stall_at]);

    let live: Vec<PathBuf> = (0..3).map(|i| dir.join(format!("live{i}.pcap"))).collect();
    let sock = dir.join("serve.sock");
    let child = bin()
        .args([
            "serve",
            live[0].to_str().unwrap(),
            live[1].to_str().unwrap(),
            live[2].to_str().unwrap(),
            "--socket",
            sock.to_str().unwrap(),
            "--poll-ms",
            "10",
            "--skew-horizon-us",
            "300000",
            "--stall-ms",
            "300",
            "--heartbeat-s",
            "0",
            "--max-duration-s",
            "60",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    append(&live[2], &b2); // the stalled source's entire lifetime of bytes
    let c0 = byte_chunks(&b0, 20);
    let c1 = byte_chunks(&b1, 20);
    for round in 0..20 {
        append(&live[0], c0[round]);
        append(&live[1], c1[round]);
        std::thread::sleep(Duration::from_millis(25));
    }

    let status = wait_until_settled(&sock);
    // The merge advanced far past the stalled source's high-water mark
    // instead of wedging behind it…
    let merged = field_u64(&status, "merged_records").unwrap_or(0);
    assert!(
        merged >= 5000,
        "merge should have skipped past the stalled source: {status}"
    );
    // …and the status says so.
    assert!(
        status.contains("\"state\":\"lagging\""),
        "stalled source should be marked lagging: {status}"
    );

    query(&sock, "shutdown").expect("shutdown accepted");
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("frames:"),
        "final analysis still printed"
    );
}

#[test]
fn serve_panicking_decoder_degrades_only_that_source() {
    let dir = temp_dir("panic");
    let views = sniffer_views(3000);
    let p0 = dir.join("sniffer_a.pcap");
    let p1 = dir.join("sniffer_b_panic_inject_marker.pcap");
    let p2 = dir.join("sniffer_c.pcap");
    write_capture(&p0, &views[0]).unwrap();
    write_capture(&p1, &views[1]).unwrap();
    write_capture(&p2, &views[2]).unwrap();

    let out = bin()
        .args([
            "serve",
            p0.to_str().unwrap(),
            p1.to_str().unwrap(),
            p2.to_str().unwrap(),
            "--poll-ms",
            "10",
            "--skew-horizon-us",
            "none",
            "--stall-ms",
            "none",
            "--heartbeat-s",
            "0",
            "--max-duration-s",
            "2",
        ])
        .env(PANIC_SOURCE_ENV, "panic_inject_marker")
        .output()
        .expect("run serve");
    assert!(
        out.status.success(),
        "a panicking decoder must not kill the service: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("decoder panicked"),
        "panic surfaced per-source: {stderr}"
    );

    // The two healthy sources analyze exactly as a batch run over them.
    let batch = bin()
        .args(["analyze", p0.to_str().unwrap(), p2.to_str().unwrap()])
        .output()
        .expect("run analyze");
    assert!(batch.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&batch.stdout)
    );
}
