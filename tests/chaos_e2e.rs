//! Loss-aware analysis end to end: the chaos harness injects *known* drop
//! rates into capture files, the lossy reader ingests them, and the Section
//! 4.4 estimator's Equation-1 output is validated against ground truth —
//! targeted drops must be recovered almost exactly, uniform drops must be
//! lower-bounded, and multi-sniffer merging must absorb skew plus drops.

use congestion::merge::{coverage_gain, merge_traces};
use congestion::persec::ACK_MATCH_WINDOW_US;
use congestion::unrecorded::estimate;
use ietf80211_congestion::trace::{read_capture_lossy_bytes, write_capture_with_snaplen};
use ietf_workloads::load_ramp;
use wifi_frames::fc::FrameKind;
use wifi_frames::record::FrameRecord;
use wifi_pcap::chaos::{corrupt_bytes, corrupt_records, ChaosConfig, ChaosRng, RecordChaosConfig};
use wifi_pcap::{LinkType, PcapWriter};

/// A chaos mix that only drops records — the ground truth stays exact and
/// the container stays clean, isolating the estimator under test.
fn drop_only(p: f64) -> RecordChaosConfig {
    RecordChaosConfig {
        drop: p,
        duplicate: 0.0,
        swap: 0.0,
        clock_skew_us: 0,
        jitter_us: 0,
        malform_head: 0.0,
    }
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ietf80211-congestion-chaos-e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Simulates one sniffer trace and returns its records as re-read from a
/// clean capture file (so all e2e paths start from ingested bytes, exactly
/// like a real trace analysis).
fn baseline_records(seed: u64, nodes: usize, secs: u64, load: f64, name: &str) -> Vec<FrameRecord> {
    let result = load_ramp(seed, nodes, secs, load).run();
    let path = temp_path(name);
    write_capture_with_snaplen(&path, &result.traces[0], 0).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let ingest = read_capture_lossy_bytes(&bytes).unwrap();
    assert!(ingest.report.is_clean(), "clean file: {:?}", ingest.report);
    ingest.records
}

/// Serializes records to an in-memory classic pcap, applies record-level
/// chaos, and re-reads through the lossy ingester. Returns the surviving
/// records plus the number of ground-truth drops.
fn roundtrip_with_chaos(
    records: &[FrameRecord],
    cfg: &RecordChaosConfig,
    seed: u64,
    name: &str,
) -> (Vec<FrameRecord>, usize) {
    let path = temp_path(name);
    write_capture_with_snaplen(&path, records, 0).unwrap();
    let (_, pkts) = wifi_pcap::read_file(&path).unwrap();
    let mut packets: Vec<(u64, Vec<u8>)> =
        pkts.into_iter().map(|p| (p.timestamp_us, p.data)).collect();
    let faults = corrupt_records(&mut packets, cfg, &mut ChaosRng::new(seed));
    let mut buf = Vec::new();
    {
        let mut w = PcapWriter::new(&mut buf, LinkType::Radiotap, 0).unwrap();
        for (ts, data) in &packets {
            w.write_packet(*ts, data).unwrap();
        }
        w.flush().unwrap();
    }
    let ingest = read_capture_lossy_bytes(&buf).unwrap();
    assert!(
        ingest.report.is_clean(),
        "drops alone leave a clean container"
    );
    (ingest.records, faults.dropped.len())
}

/// Drops only DATA frames whose very next capture is their matching ACK and
/// whose predecessor cannot be mistaken for the acknowledged frame. Every
/// such drop manufactures exactly one orphan ACK, so the estimator's
/// missing-DATA count must track the injected count almost exactly.
#[test]
fn targeted_data_drops_are_recovered_by_the_estimator() {
    let base = baseline_records(201, 35, 12, 2.0, "targeted_base.pcap");
    let before = estimate(&base);

    let mut drop = vec![false; base.len()];
    let mut injected = 0u64;
    for i in 1..base.len().saturating_sub(1) {
        let (prev, d, a) = (&base[i - 1], &base[i], &base[i + 1]);
        let matched_pair = d.kind == FrameKind::Data
            && a.kind == FrameKind::Ack
            && d.src == Some(a.dst)
            && a.timestamp_us.saturating_sub(d.timestamp_us) <= ACK_MATCH_WINDOW_US;
        // After the drop the ACK's predecessor becomes `prev`; require the
        // gap to exceed the match window so the orphan cannot re-match.
        let prev_safe = a.timestamp_us.saturating_sub(prev.timestamp_us) > ACK_MATCH_WINDOW_US;
        if matched_pair && prev_safe && !drop[i - 1] && injected < 200 {
            drop[i] = true;
            injected += 1;
        }
    }
    assert!(
        injected >= 30,
        "need a meaningful drop count, got {injected}"
    );

    let thinned: Vec<FrameRecord> = base
        .iter()
        .enumerate()
        .filter(|(i, _)| !drop[*i])
        .map(|(_, r)| *r)
        .collect();
    let after = estimate(&thinned);

    let delta = after.counts.data.saturating_sub(before.counts.data);
    assert!(
        delta <= injected && delta * 10 >= injected * 9,
        "estimator saw {delta} new missing DATA frames for {injected} injected drops"
    );

    // Equation-1 bracket: the estimator's *extra* loss percentage must agree
    // with the injected ground truth within a point.
    let est_extra_pct = delta as f64 / (delta + after.captured) as f64 * 100.0;
    let truth_pct = injected as f64 / base.len() as f64 * 100.0;
    assert!(
        (est_extra_pct - truth_pct).abs() < 1.0,
        "estimated {est_extra_pct:.2}% vs injected {truth_pct:.2}%"
    );
}

/// Uniform random drops at three congestion levels: Equation 1 is a *lower
/// bound* on true loss (drops of ACKs, or of DATA whose ACK also dropped,
/// are invisible), so the estimate must rise with injected loss yet never
/// exceed ground truth plus the pre-existing baseline inference.
#[test]
fn uniform_drops_are_lower_bounded_at_three_congestion_levels() {
    for (level, load) in [(0u64, 0.8), (1, 2.0), (2, 4.0)] {
        let name = format!("uniform_base_{level}.pcap");
        let base = baseline_records(300 + level, 30, 10, load, &name);
        let before = estimate(&base);

        let cfg = drop_only(0.12);
        let name = format!("uniform_chaos_{level}.pcap");
        let (thinned, dropped) = roundtrip_with_chaos(&base, &cfg, 77 + level, &name);
        assert_eq!(base.len(), thinned.len() + dropped);
        assert!(dropped > 0, "12% drop rate must drop something");

        let after = estimate(&thinned);
        let truth_pct = dropped as f64 / base.len() as f64 * 100.0;
        assert!(
            after.counts.total() > before.counts.total(),
            "load {load}: estimator must notice injected drops"
        );
        assert!(
            after.unrecorded_pct() <= truth_pct + before.unrecorded_pct() + 1.0,
            "load {load}: estimate {:.2}% exceeds injected {truth_pct:.2}% \
             plus baseline {:.2}% — Equation 1 must stay a lower bound",
            after.unrecorded_pct(),
            before.unrecorded_pct()
        );
    }
}

/// Three sniffers of one channel, each with its own clock skew and
/// independent 20% drops: merging their lossy ingests must recover nearly
/// the whole channel without double-counting skewed duplicates.
#[test]
fn merge_absorbs_skew_and_independent_drops() {
    let base = baseline_records(400, 30, 10, 2.0, "merge_base.pcap");
    let mut sniffers: Vec<Vec<FrameRecord>> = Vec::new();
    for (s, skew) in [0u64, 40, 80].iter().enumerate() {
        let skewed: Vec<FrameRecord> = base
            .iter()
            .map(|r| {
                let mut r = *r;
                r.timestamp_us += skew;
                r
            })
            .collect();
        let cfg = drop_only(0.20);
        let name = format!("merge_sniffer_{s}.pcap");
        let (records, _) = roundtrip_with_chaos(&skewed, &cfg, 900 + s as u64, &name);
        sniffers.push(records);
    }
    let views: Vec<&[FrameRecord]> = sniffers.iter().map(|s| &s[..]).collect();
    let merged = merge_traces(&views);
    let gain = coverage_gain(&views);
    assert!(
        gain.merged > gain.best_single,
        "merging must add coverage: {} vs best single {}",
        gain.merged,
        gain.best_single
    );
    assert!(
        merged.len() <= base.len(),
        "skewed duplicates must not inflate the merge: {} > {}",
        merged.len(),
        base.len()
    );
    assert!(
        merged.len() * 100 >= base.len() * 96,
        "three 80%-coverage sniffers should recover ≥96%: {} of {}",
        merged.len(),
        base.len()
    );
    // The recovered channel's loss estimate must also drop back near the
    // clean baseline: merging is how the study bounded sniffer loss.
    let merged_est = estimate(&merged);
    let single_est = estimate(&sniffers[0]);
    assert!(
        merged_est.unrecorded_pct() < single_est.unrecorded_pct(),
        "merge must reduce inferred loss: {:.2}% vs {:.2}%",
        merged_est.unrecorded_pct(),
        single_est.unrecorded_pct()
    );
}

/// Container-level damage (bit flips, garbage splices, length blasts) on
/// top of record drops: ingestion must survive, report the damage, and the
/// estimator must still produce a finite, bounded Equation-1 figure.
#[test]
fn container_damage_still_yields_bounded_estimate() {
    let base = baseline_records(500, 30, 10, 2.0, "container_base.pcap");
    let path = temp_path("container_dirty.pcap");
    write_capture_with_snaplen(&path, &base, 0).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let cfg = ChaosConfig {
        bit_flips_per_kb: 0.02,
        garbage_insert: 1.0,
        length_blast: 1.0,
        ..ChaosConfig::default()
    };
    let faults = corrupt_bytes(&mut bytes, 24, &cfg, &mut ChaosRng::new(4242));
    assert!(
        !faults.is_clean(),
        "chaos config must actually damage bytes"
    );

    let ingest = read_capture_lossy_bytes(&bytes).unwrap();
    assert!(
        !ingest.report.is_clean(),
        "damage must be visible in the report: {:?}",
        ingest.report
    );
    assert!(
        ingest.records.len() * 100 >= base.len() * 80,
        "light damage should still yield most records: {} of {}",
        ingest.records.len(),
        base.len()
    );
    let est = estimate(&ingest.records);
    let pct = est.unrecorded_pct();
    assert!(
        pct.is_finite() && (0.0..=100.0).contains(&pct),
        "Equation 1 must stay bounded on damaged input: {pct}"
    );
}
