//! Integration test of the full capture-file pipeline: simulate → export
//! radiotap pcap (snaplen 250) → re-ingest → analyze; the busy-time metric
//! must be bit-identical across the roundtrip.

use congestion::analyze;
use ietf80211_congestion::trace::{read_capture, write_capture, write_capture_with_snaplen};
use ietf_workloads::load_ramp;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ietf80211-congestion-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn snaplen_roundtrip_preserves_analysis() {
    let result = load_ramp(90, 40, 15, 2.0).run();
    let trace = &result.traces[0];
    assert!(trace.len() > 500);

    let path = temp_path("roundtrip.pcap");
    let written = write_capture(&path, trace).unwrap();
    assert_eq!(written as usize, trace.len());

    let reread = read_capture(&path).unwrap();
    assert_eq!(reread.len(), trace.len());

    let before = analyze(trace);
    let after = analyze(&reread);
    assert_eq!(before.len(), after.len());
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(a.busy_us, b.busy_us);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.data, b.data);
        assert_eq!(a.acked_data, b.acked_data);
        assert_eq!(a.throughput_bits, b.throughput_bits);
        assert_eq!(a.goodput_bits, b.goodput_bits);
        assert_eq!(a.tx_by_cat, b.tx_by_cat);
        assert_eq!(a.first_ack_by_rate, b.first_ack_by_rate);
    }
}

#[test]
fn truncation_actually_happens_on_disk() {
    let result = load_ramp(91, 40, 10, 2.0).run();
    let trace = &result.traces[0];
    let snap = temp_path("snap.pcap");
    let full = temp_path("full.pcap");
    write_capture(&snap, trace).unwrap();
    write_capture_with_snaplen(&full, trace, 0).unwrap();
    let snap_size = std::fs::metadata(&snap).unwrap().len();
    let full_size = std::fs::metadata(&full).unwrap().len();
    assert!(
        snap_size < full_size,
        "snaplen file ({snap_size}) should be smaller than full capture ({full_size})"
    );
    // Yet both parse to the same records.
    let a = read_capture(&snap).unwrap();
    let b = read_capture(&full).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.mac_bytes, y.mac_bytes);
        assert_eq!(x.payload_bytes, y.payload_bytes);
        assert_eq!(x.kind, y.kind);
    }
}

#[test]
fn retry_and_rate_fields_survive() {
    let result = load_ramp(92, 60, 20, 2.5).run();
    let trace = &result.traces[0];
    let retries_before = trace.iter().filter(|r| r.retry).count();
    assert!(retries_before > 0, "need some retries to test");
    let path = temp_path("fields.pcap");
    write_capture(&path, trace).unwrap();
    let reread = read_capture(&path).unwrap();
    let retries_after = reread.iter().filter(|r| r.retry).count();
    assert_eq!(retries_before, retries_after);
    for (a, b) in trace.iter().zip(&reread) {
        assert_eq!(a.rate, b.rate);
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.signal_dbm, b.signal_dbm);
    }
}

#[test]
fn pcapng_capture_is_auto_detected() {
    use wifi_pcap::pcapng::PcapNgWriter;
    use wifi_pcap::LinkType;

    // Build a pcapng file whose packets are radiotap-framed records from a
    // simulation, then read it through the same entry point as classic pcap.
    let result = load_ramp(93, 30, 10, 2.0).run();
    let trace = &result.traces[0];
    let dir = temp_path("ng.pcapng");
    let file = std::fs::File::create(&dir).unwrap();
    let mut w = PcapNgWriter::new(std::io::BufWriter::new(file), LinkType::Radiotap, 0).unwrap();
    // Reuse the classic exporter to materialize each record's radiotap
    // packet bytes, then carry the identical payloads inside pcapng blocks.
    let tmp = temp_path("ng_source.pcap");
    write_capture_with_snaplen(&tmp, trace, 0).unwrap();
    let (_, pkts) = wifi_pcap::read_file(&tmp).unwrap();
    for (r, pkt) in trace.iter().zip(&pkts) {
        w.write_packet(r.timestamp_us, &pkt.data).unwrap();
    }
    w.flush().unwrap();
    drop(w);

    let back = read_capture(&dir).unwrap();
    assert_eq!(back.len(), trace.len());
    let a = analyze(trace);
    let b = analyze(&back);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.busy_us, y.busy_us);
        assert_eq!(x.frames, y.frames);
    }
}
