//! End-to-end tests of the `wifi-congestion` command-line tool: simulate a
//! trace to pcap, then run every analysis subcommand against the file.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wifi-congestion"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("wifi-congestion-cli").join(name);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn simulate(dir: &Path) -> PathBuf {
    let out = bin()
        .args([
            "simulate",
            "ramp",
            "--out",
            dir.to_str().unwrap(),
            "--seed",
            "5",
            "--users",
            "40",
            "--duration",
            "20",
        ])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let pcap = dir.join("ramp_sniffer0.pcap");
    assert!(pcap.exists(), "pcap written");
    pcap
}

#[test]
fn simulate_then_analyze() {
    let dir = temp_dir("analyze");
    let pcap = simulate(&dir);
    let out = bin()
        .args(["analyze", pcap.to_str().unwrap()])
        .output()
        .expect("run analyze");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("frames:"), "{stdout}");
    assert!(stdout.contains("congestion:"), "{stdout}");
    assert!(stdout.contains("utilization mode:"), "{stdout}");
}

#[test]
fn histogram_unrecorded_and_aps() {
    let dir = temp_dir("others");
    let pcap = simulate(&dir);
    for (cmd, needle) in [
        ("histogram", "mode:"),
        ("unrecorded", "unrecorded percentage:"),
        ("aps", "top-"),
    ] {
        let out = bin()
            .args([cmd, pcap.to_str().unwrap()])
            .output()
            .expect("run subcommand");
        assert!(out.status.success(), "{cmd} failed");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(needle), "{cmd}: {stdout}");
    }
}

#[test]
fn helpful_errors() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    // Missing file.
    let out = bin()
        .args(["analyze", "/nonexistent.pcap"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
    // Help exits zero.
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}
